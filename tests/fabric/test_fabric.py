"""End-to-end fabric tests: cell worker, broker rounds, chaos, merge.

The broker/driver tests spawn real cell processes (2-4 small cells,
seconds of work); the cell-worker tests drive the worker in-process
for exact control.
"""

import asyncio

import pytest

from repro.fabric.broker import FabricBroker, FabricError, LEASE_EPOCH_STRIDE
from repro.fabric.chaos import run_fabric_chaos
from repro.fabric.driver import ChaosSchedule, FabricConfig, run_fabric, sweep_cells
from repro.fabric.messages import CellSpec, FabricRequest, RoundWork
from repro.fabric.cell import CellWorker
from repro.fabric.partition import FabricPartition
from repro.service.metrics import TICK_PHASES


def make_spec(**overrides):
    base = dict(
        index=0,
        cell_id="cell0tag",
        topology="omega",
        ports=8,
        queue_limit=32,
        spill_after=4,
        warm_engine="kernel",
        lease_base=0,
    )
    base.update(overrides)
    return CellSpec(**base)


def arrivals_for(cell, reqs):
    """Build FabricRequests: reqs is a list of (req_id, port, hold)."""
    return tuple(
        FabricRequest(
            req_id=req_id,
            cell=cell,
            processor=port,
            hold_ticks=hold,
            origin_cell=cell,
        )
        for req_id, port, hold in reqs
    )


class TestCellWorker:
    def test_round_grants_and_releases(self):
        worker = CellWorker(make_spec())
        work = RoundWork(
            round_no=1,
            ticks=8,
            arrivals=arrivals_for(0, [(1, 0, 2), (2, 3, 1)]),
        )
        result = asyncio.run(worker.run_round(work))
        assert result.round_no == 1
        assert {g.req_id for g in result.granted} == {1, 2}
        assert all(g.lease_id.startswith("cell0tag:") for g in result.granted)
        assert len(result.released) == 2
        assert result.active_leases == 0
        assert result.queue_depth == 0
        assert result.unplaced == ()

    def test_lease_base_offsets_names(self):
        """A rejoined cell's epoch keeps names disjoint from epoch 0."""
        worker = CellWorker(make_spec(lease_base=LEASE_EPOCH_STRIDE))
        work = RoundWork(round_no=1, ticks=4, arrivals=arrivals_for(0, [(9, 2, 1)]))
        result = asyncio.run(worker.run_round(work))
        (grant,) = result.granted
        local = int(grant.lease_id.split(":", 1)[1])
        assert local >= LEASE_EPOCH_STRIDE

    def test_overload_times_out_into_unplaced(self):
        """More requests on one port than ticks can serve: the excess
        escalates as timeouts after spill_after ticks, never vanishes."""
        worker = CellWorker(make_spec(ports=8, spill_after=2))
        # 20 requests all needing resources through the full network,
        # holds long enough that capacity runs out.
        work = RoundWork(
            round_no=1,
            ticks=6,
            arrivals=arrivals_for(0, [(i, i % 8, 6) for i in range(20)]),
        )
        result = asyncio.run(worker.run_round(work))
        settled = len(result.granted) + len(result.unplaced)
        pending = result.queue_depth
        assert settled + pending == 20
        assert result.unplaced  # something escalated
        assert all(u.reason in ("timeout", "rejected") for u in result.unplaced)

    def test_leases_survive_round_boundary(self):
        """A lease held past the round's end releases in a later round
        on the same persistent state."""

        async def two_rounds():
            worker = CellWorker(make_spec())
            first = await worker.run_round(
                RoundWork(round_no=1, ticks=2, arrivals=arrivals_for(0, [(1, 0, 6)]))
            )
            second = await worker.run_round(
                RoundWork(round_no=2, ticks=8, arrivals=())
            )
            return first, second

        first, second = asyncio.run(two_rounds())
        assert len(first.granted) == 1
        assert first.released == ()
        assert first.active_leases == 1
        assert len(second.released) == 1
        assert second.active_leases == 0

    def test_snapshot_reply_carries_mergeable_hists(self):
        worker = CellWorker(make_spec())
        asyncio.run(
            worker.run_round(
                RoundWork(round_no=1, ticks=4, arrivals=arrivals_for(0, [(1, 0, 1)]))
            )
        )
        reply = worker.snapshot_reply()
        assert reply.cell_id == "cell0tag"
        assert reply.hists["wait"].count == 1
        for phase in TICK_PHASES:
            assert reply.hists[f"tick_{phase}"].count == 4
        assert reply.snapshot["allocated"] == 1


class TestBrokerRounds:
    def test_spill_reroutes_overload_to_idle_cell(self):
        """Overload cell 0, leave cell 1 idle: timeouts escalate, the
        spill solve routes them to cell 1, and they are granted there
        under cell 1's namespace."""
        part = FabricPartition("omega", 8, 2)
        with FabricBroker(part, spill_after=2, queue_limit=64) as broker:
            flood = tuple(
                FabricRequest(
                    req_id=i,
                    cell=0,
                    processor=i % 8,
                    hold_ticks=6,
                    origin_cell=0,
                    arrive_tick=0,
                )
                for i in range(24)
            )
            first = broker.run_round(flood, ticks=8)
            assert first.escalated > 0
            assert first.spill_planned > 0
            second = broker.run_round([], ticks=8)
            spilled_grants = [g for g in second.granted if g.spilled]
            assert spilled_grants
            cell1 = part.cells[1].cell_id
            assert any(g.lease_id.startswith(f"{cell1}:") for g in spilled_grants)

    def test_kill_revokes_custody_and_rejoin_restores_service(self):
        part = FabricPartition("omega", 8, 2)
        with FabricBroker(part, spill_after=4) as broker:
            hold_forever = tuple(
                FabricRequest(
                    req_id=i, cell=1, processor=i, hold_ticks=50, origin_cell=1
                )
                for i in range(4)
            )
            outcome = broker.run_round(hold_forever, ticks=4)
            assert len(outcome.granted) == 4
            assert broker.registry_size == 4
            broker.kill_cell(1)
            assert broker.registry_size == 0
            assert broker.live_cells == [0]
            assert broker.counters["revoked_on_death"] == 4
            death = broker.events[-1]
            assert death["event"] == "cell-death"
            prefix = f"{part.cells[1].cell_id}:"
            assert all(lease.startswith(prefix) for lease in death["revoked"])
            with pytest.raises(FabricError):
                broker.kill_cell(1)
            broker.rejoin_cell(1)
            assert broker.live_cells == [0, 1]
            fresh = broker.run_round(
                arrivals_for(1, [(100, 0, 1)]), ticks=6
            )
            (grant,) = [g for g in fresh.granted if g.req_id == 100]
            local = int(grant.lease_id.split(":", 1)[1])
            assert local >= LEASE_EPOCH_STRIDE  # new epoch's namespace
            with pytest.raises(FabricError):
                broker.rejoin_cell(1)

    def test_arrivals_to_dead_cell_respill(self):
        part = FabricPartition("omega", 8, 2)
        with FabricBroker(part, spill_after=4) as broker:
            broker.run_round([], ticks=2)
            broker.kill_cell(0)
            outcome = broker.run_round(
                arrivals_for(0, [(1, 2, 1), (2, 5, 1)]), ticks=8
            )
            assert outcome.escalated == 2
            assert outcome.spill_planned == 2
            settle = broker.run_round([], ticks=8)
            assert {g.req_id for g in settle.granted} == {1, 2}
            assert all(g.spilled for g in settle.granted)


class TestRunFabric:
    CONFIG = FabricConfig(
        ports=8, cells=2, rounds=5, ticks_per_round=8, seed=11
    )

    def test_totals_conserve_and_drain(self):
        result = run_fabric(self.CONFIG)
        totals = result.totals
        assert totals["offered"] > 0
        assert totals["allocated"] + totals["spill_failed"] == totals["offered"]
        assert totals["released"] == totals["allocated"]
        assert result.drain_rounds >= 1
        assert result.critical_path_s > 0

    def test_deterministic_across_real_processes(self):
        first = run_fabric(self.CONFIG)
        second = run_fabric(self.CONFIG)
        assert first.totals == second.totals
        assert first.per_round_granted == second.per_round_granted

    def test_merged_snapshot_is_exact(self):
        result = run_fabric(self.CONFIG)
        merged = result.snapshot["merged"]
        per_cell = [
            cell["allocated"] for cell in result.snapshot["cells"].values()
        ]
        assert merged["allocated"] == sum(per_cell)
        assert set(merged["tick_timing"]) == set(TICK_PHASES)
        assert merged["wait_percentiles"]["p50"] >= 0

    def test_sweep_rows_and_speedup_baseline(self):
        sweep = sweep_cells(self.CONFIG, (1, 2))
        rows = sweep["rows"]
        assert [row["cells"] for row in rows] == [1, 2]
        assert rows[0]["speedup_vs_1"] == 1.0
        assert rows[1]["allocated"] > rows[0]["allocated"]


class TestFabricChaos:
    def test_kill_and_rejoin_invariants(self):
        # max_hold > ticks_per_round so leases span round boundaries
        # and the kill actually revokes custody.
        config = FabricConfig(
            ports=8, cells=3, rounds=12, ticks_per_round=6,
            max_hold=10, seed=5,
        )
        schedule = ChaosSchedule(cell=1, kill_round=4, rejoin_round=8)
        report = run_fabric_chaos(config, schedule, verify_determinism=True)
        assert report.deterministic is True
        assert report.revoked > 0
        assert report.granted_during_outage > 0
        totals = report.result.totals
        assert totals["cells_killed"] == 1
        assert totals["cells_rejoined"] == 1
        assert totals["allocated"] + totals["spill_failed"] == totals["offered"]
        assert totals["released"] == totals["allocated"] - totals["revoked_on_death"]
        prefix = f"{FabricPartition('omega', 8, 3).cells[1].cell_id}:"
        assert all(
            lease.startswith(prefix)
            for lease in report.result.revoked_lease_ids
        )

    def test_rejects_undersized_fabric(self):
        with pytest.raises(ValueError):
            run_fabric_chaos(FabricConfig(ports=8, cells=1, rounds=4))

"""Partition and namespace tests: placement math, stable ids."""

import pytest

from repro.fabric.partition import FabricPartition, gateway_port
from repro.util.labels import label_tag


class TestPartition:
    def test_placement_round_trip(self):
        part = FabricPartition("omega", 8, 4)
        assert part.n_processors == 32
        for processor in range(32):
            cell = part.home_cell(processor)
            local = part.local_port(processor)
            assert 0 <= cell < 4 and 0 <= local < 8
            assert part.global_processor(cell, local) == processor

    def test_cell_ids_are_stable_label_tags(self):
        """Cell ids must be stable hashes of the label, not enumeration
        order or builtin hash() — every cell process must agree."""
        part = FabricPartition("omega", 16, 2)
        assert part.cells[0].cell_id == label_tag("omega-16#0")
        assert part.cells[1].cell_id == label_tag("omega-16#1")
        again = FabricPartition("omega", 16, 2)
        assert [p.cell_id for p in again.cells] == [
            p.cell_id for p in part.cells
        ]

    def test_cell_ids_distinct_across_shape(self):
        """Different topology/radix/index always means a different id."""
        ids = {
            p.cell_id
            for topology in ("omega", "benes")
            for ports in (8, 16)
            for p in FabricPartition(topology, ports, 4).cells
        }
        assert len(ids) == 16

    def test_build_network_matches_radix(self):
        part = FabricPartition("omega", 8, 2)
        net = part.build_network()
        assert net.n_processors == 8
        assert net.n_resources == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            FabricPartition("nope", 8, 2)
        with pytest.raises(ValueError):
            FabricPartition("omega", 1, 2)
        with pytest.raises(ValueError):
            FabricPartition("omega", 8, 0)
        part = FabricPartition("omega", 8, 2)
        with pytest.raises(ValueError):
            part.home_cell(16)
        with pytest.raises(ValueError):
            part.global_processor(2, 0)
        with pytest.raises(ValueError):
            part.global_processor(0, 8)


class TestGatewayPort:
    def test_stable_and_in_range(self):
        ports = [gateway_port(req_id, 16) for req_id in range(200)]
        assert all(0 <= p < 16 for p in ports)
        assert ports == [gateway_port(req_id, 16) for req_id in range(200)]

    def test_spreads_over_ports(self):
        """The gateway hash must not funnel all spills into one port."""
        ports = {gateway_port(req_id, 16) for req_id in range(200)}
        assert len(ports) >= 12

    def test_rejects_empty_cell(self):
        with pytest.raises(ValueError):
            gateway_port(1, 0)

"""Spill-tier tests: the reduced Clos network and max-flow routing."""

import pytest

from repro.fabric.spill import SpillTopology, build_spill_network, solve_spill


def total(routes):
    return sum(routes.values())


class TestSolveSpill:
    def test_routes_demand_to_spare(self):
        routes = solve_spill(
            {0: 3}, {1: 5}, topology=SpillTopology(), n_cells=2
        )
        assert routes == {(0, 1): 3}

    def test_respects_spare_capacity(self):
        routes = solve_spill(
            {0: 10}, {1: 4}, topology=SpillTopology(uplink=32), n_cells=2
        )
        assert routes == {(0, 1): 4}

    def test_respects_origin_uplink(self):
        """An origin can export at most ``uplink`` requests per round
        no matter how much spare exists elsewhere."""
        routes = solve_spill(
            {0: 50}, {1: 50}, topology=SpillTopology(uplink=8), n_cells=2
        )
        assert total(routes) == 8

    def test_trunk_bounds_cross_pod_traffic(self):
        """Demand in pod 0, spare in pod 1: the core trunk caps it."""
        topo = SpillTopology(group_size=1, uplink=100, trunk=5)
        routes = solve_spill({0: 50}, {1: 50}, topology=topo, n_cells=2)
        assert total(routes) == 5

    def test_intra_pod_traffic_bypasses_trunk(self):
        """Same-pod spills use the pod arc, not the core trunk."""
        topo = SpillTopology(group_size=2, uplink=10, trunk=1)
        routes = solve_spill({0: 8}, {1: 8}, topology=topo, n_cells=2)
        assert total(routes) == 8

    def test_splits_across_multiple_hosts(self):
        topo = SpillTopology(group_size=4, uplink=8, trunk=32)
        routes = solve_spill(
            {0: 8}, {1: 3, 2: 3, 3: 3}, topology=topo, n_cells=4
        )
        assert total(routes) == 8
        assert all(origin == 0 for origin, _ in routes)
        for (_, host), count in routes.items():
            assert count <= {1: 3, 2: 3, 3: 3}[host]

    def test_empty_cases(self):
        topo = SpillTopology()
        assert solve_spill({}, {1: 5}, topology=topo, n_cells=2) == {}
        assert solve_spill({0: 5}, {}, topology=topo, n_cells=2) == {}

    def test_deterministic(self):
        demands = {0: 5, 2: 7, 5: 1}
        spares = {1: 4, 3: 6, 4: 2, 6: 9}
        topo = SpillTopology(group_size=2, uplink=4, trunk=8)
        first = solve_spill(demands, spares, topology=topo, n_cells=8)
        for _ in range(3):
            assert (
                solve_spill(demands, spares, topology=topo, n_cells=8)
                == first
            )


class TestBuildNetwork:
    def test_single_pod_has_no_core(self):
        net, source, sink = build_spill_network(
            {0: 1}, {1: 1}, SpillTopology(group_size=4), n_cells=4
        )
        assert "core" not in net

    def test_multi_pod_has_core(self):
        net, source, sink = build_spill_network(
            {0: 1}, {5: 1}, SpillTopology(group_size=2), n_cells=6
        )
        assert "core" in net

    def test_reduced_size_is_independent_of_ports(self):
        """The whole point: the spill solve is over cells, not ports —
        a handful of nodes regardless of installation size."""
        net, _, _ = build_spill_network(
            {i: 3 for i in range(8)},
            {i: 3 for i in range(8)},
            SpillTopology(group_size=4),
            n_cells=8,
        )
        assert net.n_nodes <= 2 + 2 * 8 + 2 * 2 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SpillTopology(group_size=0)
        with pytest.raises(ValueError):
            SpillTopology(uplink=0)
        with pytest.raises(ValueError):
            SpillTopology(trunk=0)

"""Tests for the virtual clock: ordering, determinism, drains."""

import asyncio

import pytest

from repro.service.clock import MonotonicClock, VirtualClock


def run(coro):
    return asyncio.run(coro)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0
        assert VirtualClock(start=5.0).now() == 5.0

    def test_run_until_advances_time(self):
        async def scenario():
            clock = VirtualClock()
            await clock.run_until(10.0)
            return clock.now()

        assert run(scenario()) == 10.0

    def test_sleepers_wake_in_time_order(self):
        async def scenario():
            clock = VirtualClock()
            order = []

            async def sleeper(name, dt):
                await clock.sleep(dt)
                order.append((name, clock.now()))

            tasks = [
                asyncio.ensure_future(sleeper("late", 3.0)),
                asyncio.ensure_future(sleeper("early", 1.0)),
                asyncio.ensure_future(sleeper("mid", 2.0)),
            ]
            await clock.run_until(5.0)
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == [("early", 1.0), ("mid", 2.0), ("late", 3.0)]

    def test_equal_wake_times_fire_in_registration_order(self):
        async def scenario():
            clock = VirtualClock()
            order = []

            async def sleeper(name):
                await clock.sleep(1.0)
                order.append(name)

            tasks = [asyncio.ensure_future(sleeper(n)) for n in ("a", "b", "c")]
            await clock.run_until(1.0)
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == ["a", "b", "c"]

    def test_resleep_within_window_is_honoured(self):
        async def scenario():
            clock = VirtualClock()
            wakes = []

            async def repeater():
                for _ in range(4):
                    await clock.sleep(1.0)
                    wakes.append(clock.now())

            task = asyncio.ensure_future(repeater())
            await clock.run_until(10.0)
            await task
            return wakes

        assert run(scenario()) == [1.0, 2.0, 3.0, 4.0]

    def test_sleep_beyond_deadline_stays_parked(self):
        async def scenario():
            clock = VirtualClock()

            async def sleeper():
                await clock.sleep(100.0)

            task = asyncio.ensure_future(sleeper())
            await clock.run_until(5.0)
            parked = not task.done()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            return parked, clock.pending_sleepers

        parked, remaining = run(scenario())
        assert parked
        assert remaining == 1

    def test_nonpositive_sleep_yields_without_parking(self):
        async def scenario():
            clock = VirtualClock()
            await clock.sleep(0.0)
            await clock.sleep(-1.0)
            return clock.now(), clock.pending_sleepers

        assert run(scenario()) == (0.0, 0)

    def test_advance_is_relative(self):
        async def scenario():
            clock = VirtualClock(start=2.0)
            await clock.advance(3.0)
            return clock.now()

        assert run(scenario()) == 5.0


class TestMonotonicClock:
    def test_now_and_sleep(self):
        async def scenario():
            clock = MonotonicClock()
            t0 = clock.now()
            await clock.sleep(0.0)
            return clock.now() >= t0

        assert run(scenario())

"""Tests for the deterministic service driver and its CLI wrapper."""

import pytest

from repro.cli import main
from repro.networks import omega
from repro.service.driver import run_service
from repro.sim.workload import WorkloadSpec


def spec(**kwargs):
    defaults = dict(builder=omega, n_ports=8)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestDriver:
    def test_same_seed_same_snapshot(self):
        a = run_service(spec(), rate=0.8, horizon=40.0, seed=7)
        b = run_service(spec(), rate=0.8, horizon=40.0, seed=7)
        assert a.snapshot == b.snapshot
        assert a.render() == b.render()

    def test_different_seed_different_traffic(self):
        a = run_service(spec(), rate=0.8, horizon=40.0, seed=1)
        b = run_service(spec(), rate=0.8, horizon=40.0, seed=2)
        assert a.snapshot != b.snapshot

    def test_conservation_of_requests(self):
        res = run_service(spec(), rate=0.8, horizon=60.0, seed=3)
        snap = res.snapshot
        # Every admitted request is allocated, timed out, or still queued.
        assert (
            snap["submitted"]
            == snap["allocated"] + snap["timed_out"] + snap["queue_depth"]
        )
        # Leases are released or still active.
        assert snap["allocated"] == snap["released"] + snap["active_leases"]
        assert snap["ticks"] == 60

    def test_overload_triggers_timeouts_and_backpressure(self):
        res = run_service(
            spec(n_ports=4),
            rate=4.0,              # ~16 requests/tick into 4 resources
            horizon=60.0,
            seed=5,
            queue_limit=6,
            request_timeout=4.0,
            mean_service=4.0,
        )
        snap = res.snapshot
        assert snap["rejected_full"] > 0
        assert snap["timed_out"] > 0
        assert snap["max_queue_depth"] <= 6

    def test_degradation_under_watermark(self):
        res = run_service(
            spec(n_ports=8),
            rate=3.0,
            horizon=40.0,
            seed=9,
            degrade_watermark=2,
            mean_service=2.0,
        )
        assert res.snapshot["degraded_ticks"] > 0

    def test_heterogeneous_and_priority_traffic(self):
        res = run_service(
            spec(resource_types=("fft", "io"), priority_levels=3),
            rate=0.5,
            horizon=30.0,
            seed=11,
        )
        assert res.snapshot["allocated"] > 0

    def test_warm_start_matches_cold_allocations(self):
        """Differential at the service level: the warm-start engine and
        the cold per-tick rebuild allocate identically on the same
        seeded traffic — only solver cost may differ."""
        warm = run_service(spec(), rate=1.5, horizon=60.0, seed=17)
        cold = run_service(spec(), rate=1.5, horizon=60.0, seed=17, warm_start=False)
        # Per-tick counts are equal on identical state (the rigorous
        # differential lives in tests/core/test_incremental.py); over a
        # whole trace the two paths may pick different *winners* of the
        # same size, so only the allocation totals must coincide here —
        # queue-dependent counters (submitted, timed_out) may drift.
        assert warm.snapshot["allocated"] == cold.snapshot["allocated"]
        assert warm.snapshot["released"] == cold.snapshot["released"]
        assert warm.snapshot["ticks"] == cold.snapshot["ticks"]
        assert warm.snapshot["engine_builds"] >= 1
        assert warm.snapshot["engine_warm_ticks"] == warm.snapshot["ticks"]
        assert "engine_builds" not in cold.snapshot

    def test_batched_amortises_solver_cost(self):
        """The tentpole claim at the library level: batching spends
        fewer solver instructions per allocation than one-per-solve.

        The rate is chosen so batching clears the whole demand — that
        is the regime the claim is about.  At saturating rates the
        comparison stops being meaningful: a serial service starves its
        queue (most requests time out unserved), and the kernel's
        value-bound certificate makes each trivial one-request solve
        nearly free, so "instructions per allocation" rewards serving
        almost nobody.  The starvation asserts below pin that contrast.
        """
        batched = run_service(spec(), rate=0.5, horizon=40.0, seed=13)
        serial = run_service(spec(), rate=0.5, horizon=40.0, seed=13, max_batch=1)
        per_alloc = lambda r: (
            r.snapshot["solver_instructions"] / max(r.snapshot["allocated"], 1)
        )
        assert batched.allocated >= serial.allocated
        assert per_alloc(batched) < per_alloc(serial)
        # Same traffic: batching serves everyone, one-per-tick starves.
        assert batched.snapshot["timed_out"] == 0
        assert serial.snapshot["timed_out"] > 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            run_service(spec(), rate=0.0)


class TestServeCLI:
    def test_serve_smoke(self, capsys):
        assert main([
            "serve", "--network", "omega", "--rate", "0.8",
            "--horizon", "30", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "allocated" in out
        assert "seed=7" in out

    def test_serve_deterministic_output(self, capsys):
        argv = ["serve", "--rate", "0.6", "--horizon", "25", "--seed", "4"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_serve_with_knobs(self, capsys):
        assert main([
            "serve", "--network", "crossbar", "--ports", "6", "--rate", "2.0",
            "--horizon", "20", "--queue-limit", "8", "--watermark", "4",
            "--max-batch", "4", "--timeout", "3", "--priority-levels", "2",
        ]) == 0
        assert "degraded_ticks" in capsys.readouterr().out


class TestPortValidation:
    def test_clos_odd_ports_rejected(self):
        with pytest.raises(SystemExit, match="6x6"):
            main(["serve", "--network", "clos", "--ports", "7", "--horizon", "5"])

    def test_clos_odd_ports_rejected_for_schedule_too(self):
        with pytest.raises(SystemExit, match="clos"):
            main(["schedule", "--network", "clos", "--ports", "7"])

    def test_power_of_two_builders_report_cleanly(self):
        with pytest.raises(SystemExit, match="power of two"):
            main(["blocking", "--network", "omega", "--ports", "6", "--trials", "2"])

    def test_valid_sizes_still_work(self, capsys):
        assert main(["schedule", "--network", "clos", "--ports", "8"]) == 0
        assert "allocated" in capsys.readouterr().out

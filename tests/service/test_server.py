"""Tests for the allocation service: correctness vs the optimal
scheduler, lease lifecycle, admission control, and backpressure."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MRSIN, OptimalScheduler, Request
from repro.networks import omega
from repro.service.clock import VirtualClock
from repro.service.server import (
    AllocationError,
    AllocationRejected,
    AllocationService,
    AllocationTimeout,
    ServiceClosed,
    ServiceConfig,
    ServiceFaulted,
)
from repro.sim.workload import WorkloadSpec, sample_instance


def run(coro):
    return asyncio.run(coro)


async def drain(rounds: int = 16):
    for _ in range(rounds):
        await asyncio.sleep(0)


def make_service(mrsin, **config_kwargs):
    defaults = dict(queue_limit=256)
    defaults.update(config_kwargs)
    return AllocationService(
        mrsin, config=ServiceConfig(**defaults), clock=VirtualClock()
    )


async def enqueue(service, requests, timeout=None):
    """Start acquire() tasks and let them reach the queue."""
    tasks = [
        asyncio.ensure_future(service.acquire(req, timeout=timeout))
        for req in requests
    ]
    await drain()
    return tasks


async def finish(tasks):
    """Cancel unserved acquires and collect results/exceptions."""
    for t in tasks:
        if not t.done():
            t.cancel()
    return await asyncio.gather(*tasks, return_exceptions=True)


# ----------------------------------------------------------------------
# Correctness: one tick == one optimal scheduling cycle
# ----------------------------------------------------------------------
class TestTickMatchesOptimal:
    @given(
        seed=st.integers(0, 10**6),
        request_density=st.floats(0.25, 1.0),
        free_density=st.floats(0.25, 1.0),
        occupied=st.integers(0, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_quiescent_snapshot_tick_equals_optimal(
        self, seed, request_density, free_density, occupied
    ):
        """Property: for any quiescent snapshot, one service tick
        allocates exactly as many requests as OptimalScheduler does on
        the same instance (the max-flow optimum is unique in size)."""
        spec = WorkloadSpec(
            builder=omega,
            n_ports=8,
            request_density=request_density,
            free_density=free_density,
            occupied_circuits=occupied,
        )
        twin = sample_instance(spec, seed)
        expected = OptimalScheduler().schedule(twin)

        async def scenario():
            live = sample_instance(spec, seed)
            requests = live.schedulable_requests()
            live.pending.clear()  # the service owns the queue
            service = make_service(live)
            tasks = await enqueue(service, requests)
            leases = service.run_one_cycle()
            await finish(tasks)
            return leases

        leases = run(scenario())
        assert len(leases) == len(expected)

    def test_served_processors_and_resources_are_distinct(self):
        async def scenario():
            mrsin = MRSIN(omega(8))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(p) for p in range(8)])
            leases = service.run_one_cycle()
            await finish(tasks)
            return leases

        leases = run(scenario())
        assert len(leases) == 8  # full permutation routes on a free omega
        assert len({l.request.processor for l in leases}) == 8
        assert len({l.resource for l in leases}) == 8

    def test_unbatched_mode_serves_one_per_tick(self):
        async def scenario():
            mrsin = MRSIN(omega(8))
            service = make_service(mrsin, max_batch=1)
            tasks = await enqueue(service, [Request(p) for p in range(4)])
            sizes = [len(service.run_one_cycle()) for _ in range(4)]
            await finish(tasks)
            return sizes

        assert run(scenario()) == [1, 1, 1, 1]

    def test_fifo_order_within_processor(self):
        """Two requests from one processor: the earlier one wins the tick."""

        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            first, second = await enqueue(
                service, [Request(0, tag="first"), Request(0, tag="second")]
            )
            service.run_one_cycle()
            await drain()
            return first.done(), second.done(), await finish([first, second])

        first_done, second_done, _ = run(scenario())
        assert first_done and not second_done


# ----------------------------------------------------------------------
# Lease lifecycle
# ----------------------------------------------------------------------
class TestLeaseLifecycle:
    def test_release_then_reacquire(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            (task,) = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await drain()
            assert await task is lease
            assert mrsin.resources[lease.resource].busy
            assert service.active_leases == 1

            service.release(lease)
            assert not lease.active
            assert not mrsin.resources[lease.resource].busy
            assert service.active_leases == 0
            assert mrsin.network.occupancy() == 0.0  # circuit torn down too

            (task2,) = await enqueue(service, [Request(0)])
            (lease2,) = service.run_one_cycle()
            await drain()
            assert await task2 is lease2
            return lease, lease2

        lease, lease2 = run(scenario())
        assert lease2.lease_id != lease.lease_id

    def test_double_release_raises(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(1)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            service.release(lease)
            with pytest.raises(AllocationError):
                service.release(lease)

        run(scenario())

    def test_end_transmission_frees_link_but_not_resource(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(2)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            assert mrsin.network.processor_link(2).occupied
            service.end_transmission(lease)
            assert not mrsin.network.processor_link(2).occupied
            assert mrsin.resources[lease.resource].busy
            assert not lease.transmitting
            service.end_transmission(lease)  # idempotent
            service.release(lease)
            assert not mrsin.resources[lease.resource].busy

        run(scenario())

    def test_processor_with_held_circuit_waits_for_transmission_end(self):
        """Model item 5: a transmitting processor cannot be scheduled."""

        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)

            (task2,) = await enqueue(service, [Request(0)])
            assert service.run_one_cycle() == []  # input link still held
            service.end_transmission(lease)
            (lease2,) = service.run_one_cycle()
            await drain()
            assert await task2 is lease2
            assert lease2.resource != lease.resource  # first is still busy

        run(scenario())


# ----------------------------------------------------------------------
# Admission control, deadlines, backpressure, degradation
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_timeout_expiry(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            for res in mrsin.resources:
                res.busy = True  # nothing can ever be allocated
            clock = VirtualClock()
            service = AllocationService(
                mrsin, config=ServiceConfig(queue_limit=8), clock=clock
            )
            (task,) = await enqueue(service, [Request(0)], timeout=2.5)
            service.run_one_cycle()  # t=0: queued, not expired
            assert not task.done()
            await clock.run_until(3.0)
            service.run_one_cycle()  # t=3: past the deadline
            await drain()
            with pytest.raises(AllocationTimeout):
                await task
            return service.metrics.snapshot()

        snap = run(scenario())
        assert snap["timed_out"] == 1
        assert snap["allocated"] == 0

    def test_default_timeout_from_config(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            for res in mrsin.resources:
                res.busy = True
            clock = VirtualClock()
            service = AllocationService(
                mrsin,
                config=ServiceConfig(queue_limit=8, default_timeout=1.0),
                clock=clock,
            )
            (task,) = await enqueue(service, [Request(0)])
            await clock.run_until(2.0)
            service.run_one_cycle()
            await drain()
            with pytest.raises(AllocationTimeout):
                await task

        run(scenario())

    def test_backpressure_rejection_when_queue_full(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            for res in mrsin.resources:
                res.busy = True  # keep the queue from draining
            service = make_service(mrsin, queue_limit=2)
            waiting = await enqueue(service, [Request(0), Request(1)])
            with pytest.raises(AllocationRejected):
                await service.acquire(Request(2))
            snap = service.metrics.snapshot()
            await finish(waiting)
            return snap

        snap = run(scenario())
        assert snap["rejected_full"] == 1
        assert snap["submitted"] == 2

    def test_degradation_watermark_switches_to_greedy(self):
        async def scenario():
            mrsin = MRSIN(omega(8))
            service = make_service(mrsin, degrade_watermark=0)
            tasks = await enqueue(service, [Request(p) for p in range(8)])
            leases = service.run_one_cycle()
            await finish(tasks)
            return len(leases), service.metrics.snapshot()

        n, snap = run(scenario())
        assert snap["degraded_ticks"] == 1
        assert n >= 1  # greedy still allocates, possibly suboptimally

    def test_invalid_requests_rejected_eagerly(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)))
            with pytest.raises(ValueError):
                await service.acquire(Request(99))
            with pytest.raises(ValueError):
                await service.acquire(Request(0, resource_type="no-such-type"))

        run(scenario())

    def test_close_fails_queued_requests(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            for res in mrsin.resources:
                res.busy = True
            service = make_service(mrsin)
            await service.start()
            (task,) = await enqueue(service, [Request(0)])
            await service.close()
            await drain()
            with pytest.raises(ServiceClosed):
                await task
            with pytest.raises(ServiceClosed):
                await service.acquire(Request(1))

        run(scenario())


# ----------------------------------------------------------------------
# Cancelled acquires must never leak a lease (regression)
# ----------------------------------------------------------------------
class TestCancelledAcquire:
    def test_cancel_before_tick_allocates_nothing(self):
        """Regression: a cancelled acquire used to win the next tick
        anyway, occupying a resource forever with no one to release it."""

        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            (task,) = await enqueue(service, [Request(0)])
            task.cancel()
            # No drain: the eager done-callback has not run yet, so the
            # entry is still queued when the tick fires.
            leases = service.run_one_cycle()
            await drain()
            assert leases == []
            assert service.active_leases == 0
            assert not any(res.busy for res in mrsin.resources)
            assert mrsin.network.occupancy() == 0.0
            assert service.queue_depth == 0  # callback purged the entry

        run(scenario())

    def test_cancel_between_selection_and_allocation_is_unwound(self):
        """A cancellation landing after batch selection: the circuit is
        established by apply_mapping, then immediately torn down."""

        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            task0, task1 = await enqueue(service, [Request(0), Request(1)])
            original = service._select_batch

            def select_then_cancel():
                batch = original()
                for entry in batch:
                    if entry.request.processor == 0:
                        entry.future.cancel()
                return batch

            service._select_batch = select_then_cancel
            leases = service.run_one_cycle()
            await drain()
            assert len(leases) == 1
            assert leases[0].request.processor == 1
            assert service.active_leases == 1
            busy = [res.index for res in mrsin.resources if res.busy]
            assert busy == [leases[0].resource]  # the winner's only
            assert task0.cancelled()
            assert (await task1) is leases[0]
            # The unwound resource is immediately allocatable again.
            service._select_batch = original
            (task2,) = await enqueue(service, [Request(0)])
            (lease2,) = service.run_one_cycle()
            await drain()
            assert (await task2) is lease2

        run(scenario())

    def test_cancelled_entry_leaves_queue_eagerly(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            for res in mrsin.resources:
                res.busy = True  # nothing drains the queue
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(0), Request(1)])
            assert service.queue_depth == 2
            tasks[0].cancel()
            await drain()
            assert service.queue_depth == 1
            await finish(tasks)

        run(scenario())


# ----------------------------------------------------------------------
# A dying tick loop must fault loudly (regression)
# ----------------------------------------------------------------------
class TestTickLoopFault:
    def test_fault_fails_queued_acquires(self):
        """Regression: an exception in run_one_cycle used to kill the
        background task silently, stranding every queued acquire."""

        async def scenario():
            clock = VirtualClock()
            mrsin = MRSIN(omega(4))
            service = AllocationService(
                mrsin, config=ServiceConfig(tick_interval=1.0), clock=clock
            )
            boom = RuntimeError("solver exploded")

            def failing_cycle():
                raise boom

            service.run_one_cycle = failing_cycle
            async with service:
                task = asyncio.ensure_future(service.acquire(Request(0)))
                await drain()
                await clock.run_until(1.0)
                await drain()
                with pytest.raises(ServiceFaulted) as excinfo:
                    await task
                assert excinfo.value.__cause__ is boom
                assert service.fault is boom
                assert service.queue_depth == 0
                with pytest.raises(ServiceClosed):
                    await service.acquire(Request(1))

        run(scenario())

    def test_unfaulted_service_has_no_fault(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)))
            tasks = await enqueue(service, [Request(0)])
            service.run_one_cycle()
            await finish(tasks)
            assert service.fault is None

        run(scenario())


# ----------------------------------------------------------------------
# Warm start: the engine rides along without changing behaviour
# ----------------------------------------------------------------------
class TestWarmStart:
    def test_snapshot_reports_engine_stats(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)))
            tasks = await enqueue(service, [Request(p) for p in range(4)])
            service.run_one_cycle()
            await finish(tasks)
            return service.snapshot()

        snap = run(scenario())
        assert snap["engine_builds"] == 1
        assert snap["engine_warm_ticks"] == 1

    def test_cold_config_has_no_engine_stats(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)), warm_start=False)
            tasks = await enqueue(service, [Request(0)])
            leases = service.run_one_cycle()
            await finish(tasks)
            return len(leases), service.snapshot()

        n, snap = run(scenario())
        assert n == 1
        assert "engine_builds" not in snap

    def test_lifecycle_stays_warm_across_release_and_reacquire(self):
        async def scenario():
            mrsin = MRSIN(omega(8))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(p) for p in range(8)])
            leases = service.run_one_cycle()
            await finish(tasks)
            for lease in leases[:4]:
                service.end_transmission(lease)
            for lease in leases[4:]:
                service.release(lease)
            tasks = await enqueue(service, [Request(p) for p in range(8)])
            more = service.run_one_cycle()
            await finish(tasks)
            return len(leases), len(more), service.snapshot()

        first, second, snap = run(scenario())
        assert first == 8
        assert second == 4  # only the released half is free again
        assert snap["engine_builds"] == 1  # no cold rebuild along the way


# ----------------------------------------------------------------------
# The background tick loop
# ----------------------------------------------------------------------
class TestTickLoop:
    def test_background_loop_allocates_on_tick(self):
        async def scenario():
            clock = VirtualClock()
            mrsin = MRSIN(omega(4))
            service = AllocationService(
                mrsin, config=ServiceConfig(tick_interval=1.0), clock=clock
            )
            async with service:
                task = asyncio.ensure_future(service.acquire(Request(0)))
                await drain()
                assert not task.done()  # no tick has fired yet
                await clock.run_until(1.0)
                lease = await task
                return lease.acquired_at, lease.waited

        acquired_at, waited = run(scenario())
        assert acquired_at == 1.0
        assert waited == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(tick_interval=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ServiceConfig(degrade_watermark=-1)

    def test_metrics_render_mentions_all_counters(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)))
            tasks = await enqueue(service, [Request(0)])
            service.run_one_cycle()
            await finish(tasks)
            return service.metrics.render()

        text = run(scenario())
        for key in ("allocated", "timed_out", "rejected_full", "wait <= 1",
                    "solver_instructions", "instructions_per_allocation"):
            assert key in text, key

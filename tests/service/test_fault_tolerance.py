"""Service-level fault tolerance: lease revocation, the tick-loop
fault budget, closed/faulted-service errors, and retry-with-backoff."""

import asyncio

import pytest

from repro.core import MRSIN, Request
from repro.faults import FaultEvent
from repro.networks import omega
from repro.service.clock import VirtualClock
from repro.service.driver import acquire_with_retry
from repro.service.server import (
    AllocationError,
    AllocationRejected,
    AllocationService,
    LeaseRevoked,
    ServiceClosed,
    ServiceConfig,
    ServiceFaulted,
)


def run(coro):
    return asyncio.run(coro)


async def drain(rounds: int = 16):
    for _ in range(rounds):
        await asyncio.sleep(0)


def make_service(mrsin, **config_kwargs):
    defaults = dict(queue_limit=256)
    defaults.update(config_kwargs)
    return AllocationService(
        mrsin, config=ServiceConfig(**defaults), clock=VirtualClock()
    )


async def enqueue(service, requests, timeout=None):
    tasks = [
        asyncio.ensure_future(service.acquire(req, timeout=timeout))
        for req in requests
    ]
    await drain()
    return tasks


async def finish(tasks):
    for t in tasks:
        if not t.done():
            t.cancel()
    return await asyncio.gather(*tasks, return_exceptions=True)


# ----------------------------------------------------------------------
# Revocation: a fault severs one lease, the service keeps serving
# ----------------------------------------------------------------------
class TestLeaseRevocation:
    def test_link_fault_revokes_only_the_severed_lease(self):
        """The tentpole scenario: a fault on one held circuit revokes
        exactly that lease; every other lease survives and the service
        keeps allocating on the degraded network."""

        async def scenario():
            mrsin = MRSIN(omega(8))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(p) for p in range(4)])
            leases = service.run_one_cycle()
            await finish(tasks)
            assert len(leases) == 4
            victim = leases[0]
            mrsin.fail_link(victim.circuit.links[1].index)
            revoked = service.reconcile_faults()
            assert revoked == [victim]
            assert victim.revoked and not victim.active
            assert victim.revocation.is_set()
            assert service.active_leases == 3
            for survivor in leases[1:]:
                assert survivor.active and not survivor.revoked
            assert not mrsin.resources[victim.resource].busy
            assert all(not link.occupied for link in victim.circuit.links)
            # The service still allocates for everyone else.
            tasks2 = await enqueue(service, [Request(p) for p in range(4, 8)])
            leases2 = service.run_one_cycle()
            await finish(tasks2)
            assert len(leases2) == 4
            assert service.snapshot()["revoked"] == 1

        run(scenario())

    def test_resource_fault_revokes_lease(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            mrsin.fail_resource(lease.resource)
            # run_one_cycle reconciles implicitly — no manual call.
            service.run_one_cycle()
            assert lease.revoked
            assert service.active_leases == 0

        run(scenario())

    def test_release_and_end_transmission_on_revoked_lease_raise(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(1)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            mrsin.fail_link(lease.circuit.links[0].index)
            service.reconcile_faults()
            with pytest.raises(LeaseRevoked):
                service.release(lease)
            with pytest.raises(LeaseRevoked):
                service.end_transmission(lease)

        run(scenario())

    def test_holder_observes_revocation_event(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            waiter = asyncio.ensure_future(lease.revocation.wait())
            await drain()
            assert not waiter.done()
            mrsin.fail_resource(lease.resource)
            service.reconcile_faults()
            await drain()
            assert waiter.done()  # push notification, no polling

        run(scenario())

    def test_revoked_resource_reusable_after_repair(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(2)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            mrsin.fail_resource(lease.resource)
            service.run_one_cycle()
            mrsin.repair_resource(lease.resource)
            tasks2 = await enqueue(service, [Request(p) for p in range(4)])
            leases2 = service.run_one_cycle()
            await finish(tasks2)
            assert len(leases2) == 4  # full capacity restored

        run(scenario())

    def test_apply_fault_event_counts_metrics(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            assert service.apply_fault_event(FaultEvent(0.0, "link", 0)) is True
            assert service.apply_fault_event(FaultEvent(0.0, "link", 0)) is False
            assert service.apply_fault_event(FaultEvent(1.0, "link", 0, repair=True))
            snap = service.snapshot()
            assert snap["faults_injected"] == 1
            assert snap["repairs_applied"] == 1

        run(scenario())

    def test_snapshot_reports_failed_components(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            mrsin.fail_link(0)
            mrsin.fail_switchbox(0, 0)
            mrsin.fail_resource(1)
            snap = service.snapshot()
            assert snap["failed_links"] == 1
            assert snap["failed_switchboxes"] == 1
            assert snap["failed_resources"] == 1

        run(scenario())


# ----------------------------------------------------------------------
# Closed / faulted service: loud errors, not silent mutation
# ----------------------------------------------------------------------
class TestClosedServiceErrors:
    def test_release_on_closed_service_raises(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin)
            tasks = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            await service.close()
            with pytest.raises(ServiceClosed):
                service.release(lease)
            with pytest.raises(ServiceClosed):
                service.end_transmission(lease)
            assert lease.active  # the refusal left the lease untouched

        run(scenario())

    def test_release_on_faulted_service_raises_chained(self):
        async def scenario():
            clock = VirtualClock()
            mrsin = MRSIN(omega(4))
            service = AllocationService(
                mrsin, config=ServiceConfig(tick_interval=1.0), clock=clock
            )
            tasks = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            boom = RuntimeError("solver exploded")

            def failing_cycle():
                raise boom

            service.run_one_cycle = failing_cycle
            async with service:
                await clock.run_until(1.0)
                await drain()
            with pytest.raises(ServiceFaulted) as excinfo:
                service.release(lease)
            assert excinfo.value.__cause__ is boom
            with pytest.raises(ServiceFaulted):
                service.end_transmission(lease)

        run(scenario())


# ----------------------------------------------------------------------
# Fault budget: transient tick errors are absorbed, then escalate
# ----------------------------------------------------------------------
class TestFaultBudget:
    def _flaky_service(self, failures: int, budget: int):
        clock = VirtualClock()
        mrsin = MRSIN(omega(4))
        service = AllocationService(
            mrsin,
            config=ServiceConfig(tick_interval=1.0, fault_budget=budget),
            clock=clock,
        )
        original = service.run_one_cycle
        remaining = [failures]

        def flaky_cycle():
            if remaining[0] > 0:
                remaining[0] -= 1
                raise RuntimeError("transient glitch")
            return original()

        service.run_one_cycle = flaky_cycle
        return service, clock

    def test_budget_absorbs_transient_errors(self):
        async def scenario():
            service, clock = self._flaky_service(failures=2, budget=2)
            async with service:
                task = asyncio.ensure_future(service.acquire(Request(0)))
                await drain()
                await clock.run_until(3.0)
                await drain()
                lease = await task  # granted on the third tick
            assert lease.resource in range(4)
            assert service.fault is None
            assert service.metrics.tick_retries == 2

        run(scenario())

    def test_budget_exhaustion_faults_the_service(self):
        async def scenario():
            service, clock = self._flaky_service(failures=5, budget=2)
            async with service:
                task = asyncio.ensure_future(service.acquire(Request(0)))
                await drain()
                await clock.run_until(3.0)
                await drain()
                with pytest.raises(ServiceFaulted):
                    await task
            assert service.fault is not None
            assert service.metrics.tick_retries == 2  # budget, then escalation

        run(scenario())

    def test_success_resets_the_budget_window(self):
        """The budget bounds *consecutive* failures: a good tick in
        between restarts the count."""

        async def scenario():
            clock = VirtualClock()
            mrsin = MRSIN(omega(4))
            service = AllocationService(
                mrsin,
                config=ServiceConfig(tick_interval=1.0, fault_budget=1),
                clock=clock,
            )
            original = service.run_one_cycle
            schedule = iter([True, False, True, False])  # fail, ok, fail, ok

            def alternating_cycle():
                if next(schedule, False):
                    raise RuntimeError("transient glitch")
                return original()

            service.run_one_cycle = alternating_cycle
            async with service:
                await clock.run_until(4.0)
                await drain()
            assert service.fault is None
            assert service.metrics.tick_retries == 2

        run(scenario())

    def test_fault_budget_validation(self):
        with pytest.raises(ValueError, match="fault_budget"):
            ServiceConfig(fault_budget=-1)


# ----------------------------------------------------------------------
# acquire_with_retry: bounded, deterministic backoff
# ----------------------------------------------------------------------
class TestAcquireWithRetry:
    def test_retry_succeeds_after_queue_drains(self):
        async def scenario():
            clock = VirtualClock()
            mrsin = MRSIN(omega(8))
            service = AllocationService(
                mrsin,
                config=ServiceConfig(tick_interval=1.0, queue_limit=1),
                clock=clock,
            )
            async with service:
                blocker = asyncio.ensure_future(service.acquire(Request(0)))
                await drain()
                retrier = asyncio.ensure_future(
                    acquire_with_retry(service, Request(1), rng=7, base_delay=0.5)
                )
                await drain()
                assert not retrier.done()  # first attempt bounced, backing off
                await clock.run_until(20.0)
                await drain()
                lease0 = await blocker
                lease1 = await retrier
                assert lease1.request.processor == 1
                service.release(lease0)
                service.release(lease1)

        run(scenario())

    def test_retry_gives_up_after_attempts(self):
        async def scenario():
            clock = VirtualClock()
            mrsin = MRSIN(omega(4))
            service = AllocationService(
                mrsin,
                config=ServiceConfig(tick_interval=1.0, queue_limit=1),
                clock=clock,
            )
            # Never start the loop: the queue never drains.
            blocker = asyncio.ensure_future(service.acquire(Request(0)))
            await drain()
            retrier = asyncio.ensure_future(
                acquire_with_retry(service, Request(1), rng=3, attempts=3)
            )
            await drain()
            await clock.run_until(100.0)
            await drain()
            with pytest.raises(AllocationRejected):
                await retrier
            blocker.cancel()
            await asyncio.gather(blocker, return_exceptions=True)
            await service.close()

        run(scenario())

    def test_retry_schedule_is_deterministic(self):
        async def attempt_times(seed):
            clock = VirtualClock()
            mrsin = MRSIN(omega(4))
            service = AllocationService(
                mrsin, config=ServiceConfig(queue_limit=1), clock=clock
            )
            blocker = asyncio.ensure_future(service.acquire(Request(0)))
            await drain()
            times = []
            original = service.acquire

            async def recording_acquire(request, **kwargs):
                times.append(clock.now())
                return await original(request, **kwargs)

            service.acquire = recording_acquire
            retrier = asyncio.ensure_future(
                acquire_with_retry(service, Request(1), rng=seed, attempts=4)
            )
            await drain()
            await clock.run_until(100.0)
            await drain()
            with pytest.raises(AllocationRejected):
                await retrier
            blocker.cancel()
            await asyncio.gather(blocker, return_exceptions=True)
            await service.close()
            return times

        first = run(attempt_times(11))
        second = run(attempt_times(11))
        other = run(attempt_times(12))
        assert len(first) == 4
        assert first == second  # same seed, same backoff schedule
        assert first != other  # jitter really depends on the seed

    def test_closed_service_propagates_immediately(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)))
            await service.close()
            with pytest.raises(ServiceClosed):
                await acquire_with_retry(service, Request(0), rng=0)

        run(scenario())

    def test_retry_validates_parameters(self):
        async def scenario():
            service = make_service(MRSIN(omega(4)))
            with pytest.raises(ValueError, match="attempts"):
                await acquire_with_retry(service, Request(0), attempts=0)
            with pytest.raises(ValueError, match="base_delay"):
                await acquire_with_retry(service, Request(0), base_delay=0.0)
            with pytest.raises(ValueError, match="max_delay"):
                await acquire_with_retry(
                    service, Request(0), base_delay=2.0, max_delay=1.0
                )

        run(scenario())


# ----------------------------------------------------------------------
# Cold-path regressions: the fixes hold with warm_start=False too
# ----------------------------------------------------------------------
class TestColdPathRegressions:
    def test_cancelled_acquire_unwinds_without_engine(self):
        """The cancelled-winner unwind must not depend on the warm
        engine being present."""

        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin, warm_start=False)
            task0, task1 = await enqueue(service, [Request(0), Request(1)])
            original = service._select_batch

            def select_then_cancel():
                batch = original()
                for entry in batch:
                    if entry.request.processor == 0:
                        entry.future.cancel()
                return batch

            service._select_batch = select_then_cancel
            leases = service.run_one_cycle()
            await drain()
            assert len(leases) == 1
            assert leases[0].request.processor == 1
            busy = [res.index for res in mrsin.resources if res.busy]
            assert busy == [leases[0].resource]
            assert task0.cancelled()
            assert (await task1) is leases[0]

        run(scenario())

    def test_double_release_raises_without_engine(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin, warm_start=False)
            tasks = await enqueue(service, [Request(1)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            service.release(lease)
            with pytest.raises(AllocationError):
                service.release(lease)

        run(scenario())

    def test_revocation_works_without_engine(self):
        async def scenario():
            mrsin = MRSIN(omega(4))
            service = make_service(mrsin, warm_start=False)
            tasks = await enqueue(service, [Request(0)])
            (lease,) = service.run_one_cycle()
            await finish(tasks)
            mrsin.fail_link(lease.circuit.links[0].index)
            (revoked,) = service.reconcile_faults()
            assert revoked is lease
            tasks2 = await enqueue(service, [Request(1)])
            leases2 = service.run_one_cycle()
            await finish(tasks2)
            assert len(leases2) == 1

        run(scenario())

"""Fault-injection tests: dead links and dead resources.

The paper motivates the distributed architecture partly by *"fault
tolerance and modularity"*.  A failed link is modelled as permanently
occupied (it can never carry a circuit), a failed resource as
permanently busy.  These tests check that every scheduler degrades
gracefully and that the optimal ones remain exactly optimal for the
surviving network.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MRSIN, OptimalScheduler, Request, greedy_schedule
from repro.distributed import DistributedScheduler
from repro.networks import benes, gamma, omega


def inject_faults(net, mrsin, rng, link_rate: float, resource_rate: float) -> tuple[int, int]:
    dead_links = 0
    for link in net.links:
        if rng.random() < link_rate:
            link.occupied = True
            dead_links += 1
    dead_res = 0
    for res in mrsin.resources:
        if rng.random() < resource_rate:
            res.busy = True
            dead_res += 1
    return dead_links, dead_res


class TestDegradation:
    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_equals_distributed_under_faults(self, seed):
        rng = np.random.default_rng(seed)
        net = omega(8)
        m = MRSIN(net)
        inject_faults(net, m, rng, 0.3, 0.2)
        for p in range(8):
            if not net.processor_link(p).occupied:
                m.submit(Request(p))
        a = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == a
        outcome.mapping.validate(m)

    def test_dead_processor_link_blocks_only_that_processor(self):
        net = omega(8)
        m = MRSIN(net)
        net.processor_link(3).occupied = True
        for p in range(8):
            m.submit(Request(p))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 7
        assert 3 not in {a.request.processor for a in mapping}

    def test_dead_resource_link_excludes_resource(self):
        net = omega(8)
        m = MRSIN(net)
        net.resource_link(5).occupied = True
        for p in range(8):
            m.submit(Request(p))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 7
        assert 5 not in {a.resource.index for a in mapping}

    def test_total_failure_yields_empty_mapping(self):
        net = omega(8)
        m = MRSIN(net)
        for link in net.links:
            link.occupied = True
        m.pending.append(Request(0))  # bypass submit's link check deliberately
        assert len(OptimalScheduler().schedule(m)) == 0
        assert len(DistributedScheduler().schedule(m).mapping) == 0

    def test_redundant_topologies_tolerate_more(self):
        """Killing one interstage link disables some pairs on a
        unique-path Omega but none on Benes or gamma."""
        def surviving_pairs(builder) -> int:
            net = builder(8)
            # Kill one middle-stage link (not a terminal link).
            for link in net.links:
                if link.src.kind == "box_out" and link.dst.kind == "box_in":
                    link.occupied = True
                    break
            count = 0
            for p in range(8):
                for r in range(8):
                    if net.find_free_path(p, r) is not None:
                        count += 1
            return count

        assert surviving_pairs(omega) < 64
        assert surviving_pairs(benes) == 64
        assert surviving_pairs(gamma) == 64


class TestConsistencyUnderFaults:
    def test_mapping_never_uses_dead_links(self):
        rng = np.random.default_rng(7)
        net = omega(8)
        m = MRSIN(net)
        dead = {l.index for l in net.links if rng.random() < 0.25}
        for i in dead:
            net.links[i].occupied = True
        for p in range(8):
            if not net.processor_link(p).occupied:
                m.submit(Request(p))
        mapping = OptimalScheduler().schedule(m)
        for a in mapping:
            for link in a.path:
                assert link.index not in dead

    def test_greedy_also_avoids_dead_links(self):
        rng = np.random.default_rng(8)
        net = omega(8)
        m = MRSIN(net)
        dead = {l.index for l in net.links if rng.random() < 0.25}
        for i in dead:
            net.links[i].occupied = True
        for p in range(8):
            if not net.processor_link(p).occupied:
                m.submit(Request(p))
        mapping = greedy_schedule(m, order="random", rng=1)
        for a in mapping:
            assert not any(link.index in dead for link in a.path)


@given(
    seed=st.integers(0, 50_000),
    link_rate=st.floats(0.0, 0.5),
    res_rate=st.floats(0.0, 0.5),
)
@settings(max_examples=30, deadline=None)
def test_property_fault_tolerance_invariants(seed, link_rate, res_rate):
    """Property: under any fault pattern, (a) the distributed optimum
    equals the software optimum, (b) the mapping is realisable, and
    (c) allocations never exceed the surviving supply."""
    rng = np.random.default_rng(seed)
    net = omega(8)
    m = MRSIN(net)
    inject_faults(net, m, rng, link_rate, res_rate)
    for p in range(8):
        if not net.processor_link(p).occupied:
            m.submit(Request(p))
    optimal = OptimalScheduler().schedule(m)
    outcome = DistributedScheduler().schedule(m)
    assert len(outcome.mapping) == len(optimal)
    outcome.mapping.validate(m)
    assert len(optimal) <= min(
        len(m.schedulable_requests()), len(m.free_resources())
    )

"""Tests for blocking estimation — including the paper's headline shape."""

import pytest

from repro.networks import crossbar, omega
from repro.sim.blocking import POLICIES, estimate_blocking
from repro.sim.runner import sweep
from repro.sim.workload import WorkloadSpec


def omega_spec(**kw):
    return WorkloadSpec(builder=omega, n_ports=8, **kw)


class TestEstimator:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            estimate_blocking(omega_spec(), "telepathy")

    def test_all_policies_run(self):
        for policy in POLICIES:
            est = estimate_blocking(omega_spec(), policy, trials=5, seed=0)
            assert est.trials == 5
            assert 0.0 <= est.probability <= 1.0

    def test_crossbar_never_blocks(self):
        """Control: a crossbar is nonblocking for every policy."""
        spec = WorkloadSpec(builder=lambda n: crossbar(n, n), n_ports=8)
        for policy in ("optimal", "greedy", "random_binding"):
            est = estimate_blocking(spec, policy, trials=20, seed=1)
            assert est.probability == 0.0

    def test_deterministic_given_seed(self):
        a = estimate_blocking(omega_spec(), "random_binding", trials=20, seed=7)
        b = estimate_blocking(omega_spec(), "random_binding", trials=20, seed=7)
        assert (a.blocked, a.possible) == (b.blocked, b.possible)

    def test_ci_brackets_estimate(self):
        est = estimate_blocking(omega_spec(), "random_binding", trials=30, seed=2)
        lo, hi = est.ci95
        assert lo <= est.probability <= hi


class TestPaperShape:
    """The in-text claims: optimal < 5% (~2%), heuristic ~20%."""

    def test_optimal_beats_heuristic_decisively(self):
        opt = estimate_blocking(omega_spec(), "optimal", trials=60, seed=3)
        heur = estimate_blocking(omega_spec(), "random_binding", trials=60, seed=3)
        assert opt.probability < 0.05, f"optimal blocking {opt.probability}"
        assert heur.probability > 0.10, f"heuristic blocking {heur.probability}"
        assert heur.probability > 4 * max(opt.probability, 0.01)

    def test_distributed_matches_optimal_estimate(self):
        opt = estimate_blocking(omega_spec(), "optimal", trials=30, seed=4)
        dist = estimate_blocking(omega_spec(), "distributed", trials=30, seed=4)
        assert opt.blocked == dist.blocked
        assert opt.possible == dist.possible

    def test_occupied_network_raises_blocking(self):
        """'If the network is not completely free, then there will be
        fewer paths available ... blocking will be higher.'"""
        free = estimate_blocking(
            omega_spec(request_density=0.8), "random_binding", trials=60, seed=5
        )
        occupied = estimate_blocking(
            omega_spec(request_density=0.8, occupied_circuits=3),
            "random_binding",
            trials=60,
            seed=5,
        )
        assert occupied.probability > free.probability


class TestSweep:
    def test_sweep_grid_complete(self):
        points = [
            ("d=0.5", omega_spec(request_density=0.5)),
            ("d=1.0", omega_spec(request_density=1.0)),
        ]
        result = sweep("test", points, ["optimal", "random_binding"], trials=10, seed=0)
        assert set(result.rows) == {
            ("d=0.5", "optimal"),
            ("d=0.5", "random_binding"),
            ("d=1.0", "optimal"),
            ("d=1.0", "random_binding"),
        }
        text = result.render()
        assert "d=0.5" in text and "random_binding" in text

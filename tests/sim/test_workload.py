"""Tests for workload generation."""

import numpy as np
import pytest

from repro.networks import omega
from repro.core.model import MRSIN
from repro.sim.workload import (
    WorkloadSpec,
    occupy_random_circuits,
    occupy_random_links,
    sample_instance,
)


class TestSpecValidation:
    def test_density_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(builder=omega, request_density=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(builder=omega, free_density=-0.1)
        with pytest.raises(ValueError):
            WorkloadSpec(builder=omega, priority_levels=0)


class TestOccupancyHelpers:
    def test_occupy_random_circuits(self):
        rng = np.random.default_rng(0)
        net = omega(8)
        m = MRSIN(net)
        n = occupy_random_circuits(net, m, 3, rng)
        assert n == 3
        assert len(net.circuits) == 3
        assert sum(r.busy for r in m.resources) == 3

    def test_occupancy_gives_up_gracefully(self):
        rng = np.random.default_rng(0)
        net = omega(2)
        m = MRSIN(net)
        n = occupy_random_circuits(net, m, 10, rng)
        assert n <= 2  # only two processors exist

    def test_occupy_random_links(self):
        rng = np.random.default_rng(0)
        net = omega(8)
        n = occupy_random_links(net, 0.5, rng)
        assert 0 < n < len(net.links)
        assert sum(l.occupied for l in net.links) == n


class TestSampling:
    def test_full_density(self):
        m = sample_instance(WorkloadSpec(builder=omega, n_ports=8), rng=1)
        assert len(m.pending) == 8
        assert len(m.free_resources()) == 8

    def test_partial_density_statistics(self):
        spec = WorkloadSpec(builder=omega, n_ports=16, request_density=0.5, free_density=0.5)
        total_req = total_free = 0
        for seed in range(40):
            m = sample_instance(spec, rng=seed)
            total_req += len(m.pending)
            total_free += len(m.free_resources())
        # Expect ~0.5 * 16 * 40 = 320 each; allow generous slack.
        assert 240 < total_req < 400
        assert 240 < total_free < 400

    def test_occupied_circuits_applied(self):
        spec = WorkloadSpec(builder=omega, n_ports=8, occupied_circuits=2)
        m = sample_instance(spec, rng=3)
        assert len(m.network.circuits) == 2
        # Processors holding circuits never also request.
        for circuit in m.network.circuits:
            assert circuit.processor not in {r.processor for r in m.pending}

    def test_priorities_sampled_in_range(self):
        spec = WorkloadSpec(builder=omega, n_ports=8, priority_levels=5)
        m = sample_instance(spec, rng=4)
        assert m.max_priority == 5
        for req in m.pending:
            assert 1 <= req.priority <= 5
        for res in m.resources:
            assert 1 <= res.preference <= 5

    def test_heterogeneous_types(self):
        spec = WorkloadSpec(builder=omega, n_ports=8, resource_types=["fft", "conv"])
        m = sample_instance(spec, rng=5)
        assert m.is_heterogeneous
        assert [r.resource_type for r in m.resources] == ["fft", "conv"] * 4
        for req in m.pending:
            assert req.resource_type in ("fft", "conv")

    def test_determinism(self):
        spec = WorkloadSpec(builder=omega, n_ports=8, request_density=0.5)
        a = sample_instance(spec, rng=42)
        b = sample_instance(spec, rng=42)
        assert [r.processor for r in a.pending] == [r.processor for r in b.pending]
        assert [r.busy for r in a.resources] == [r.busy for r in b.resources]

"""Tests for the statistics helpers."""

import math

import pytest

from repro.sim.metrics import mean_and_ci, wilson_interval


class TestMeanCI:
    def test_simple(self):
        mean, half = mean_and_ci([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert half > 0

    def test_single_sample_infinite_ci(self):
        mean, half = mean_and_ci([5.0])
        assert mean == 5.0 and math.isinf(half)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_ci([])

    def test_constant_samples(self):
        mean, half = mean_and_ci([2.0] * 10)
        assert mean == 2.0 and half == 0.0


class TestWilson:
    def test_half_and_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_zero_successes_interval_above_zero(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0 < hi < 0.05

    def test_all_successes(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0
        assert lo > 0.95

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(5, 50)
        lo2, hi2 = wilson_interval(50, 500)
        assert hi2 - lo2 < hi1 - lo1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_bracket_property(self):
        for s, n in [(0, 10), (3, 10), (10, 10), (17, 123)]:
            lo, hi = wilson_interval(s, n)
            assert 0.0 <= lo <= s / n <= hi <= 1.0

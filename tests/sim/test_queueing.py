"""Tests for the discrete-event queueing model."""

import pytest

from repro.core.model import MRSIN
from repro.networks import crossbar, omega
from repro.sim.queueing import simulate_queueing


class TestQueueing:
    def test_light_load_low_utilization(self):
        m = MRSIN(crossbar(4, 4))
        res = simulate_queueing(
            m, arrival_rate=0.1, mean_service=1.0, horizon=300.0, seed=0
        )
        assert 0.0 < res.utilization < 0.3
        assert res.completed > 0
        assert res.offered_load == pytest.approx(0.1)

    def test_heavy_load_high_utilization(self):
        m = MRSIN(crossbar(4, 4))
        res = simulate_queueing(
            m, arrival_rate=2.0, mean_service=1.0, horizon=300.0, seed=0
        )
        assert res.utilization > 0.8
        assert res.mean_queue > 1.0

    def test_response_time_grows_with_load(self):
        light = simulate_queueing(
            MRSIN(omega(8)), arrival_rate=0.2, horizon=400.0, seed=1
        )
        heavy = simulate_queueing(
            MRSIN(omega(8)), arrival_rate=0.9, horizon=400.0, seed=1
        )
        assert heavy.mean_response > light.mean_response

    def test_policies_comparable(self):
        """Optimal scheduling should never complete fewer tasks than
        blind random binding at moderate load."""
        opt = simulate_queueing(
            MRSIN(omega(8)), policy="optimal", arrival_rate=0.8, horizon=300.0, seed=2
        )
        blind = simulate_queueing(
            MRSIN(omega(8)), policy="random_binding", arrival_rate=0.8, horizon=300.0, seed=2
        )
        assert opt.completed >= 0.95 * blind.completed

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            simulate_queueing(MRSIN(omega(8)), policy="psychic")

    def test_network_state_consistent_after_run(self):
        m = MRSIN(omega(8))
        simulate_queueing(m, arrival_rate=0.5, horizon=100.0, seed=3)
        # Every box's connection state must still be a partial matching.
        for box in m.network.boxes():
            conn = box.connections
            assert len(set(conn.values())) == len(conn)

    def test_determinism(self):
        a = simulate_queueing(MRSIN(omega(8)), arrival_rate=0.5, horizon=100.0, seed=9)
        b = simulate_queueing(MRSIN(omega(8)), arrival_rate=0.5, horizon=100.0, seed=9)
        assert a.completed == b.completed
        assert a.utilization == pytest.approx(b.utilization)


class TestBatching:
    def test_min_batch_validation(self):
        with pytest.raises(ValueError, match="min_batch"):
            simulate_queueing(MRSIN(omega(8)), min_batch=0)

    def test_batching_adds_queueing_delay(self):
        eager = simulate_queueing(MRSIN(omega(8)), arrival_rate=0.5,
                                  horizon=300.0, min_batch=1, seed=6)
        batched = simulate_queueing(MRSIN(omega(8)), arrival_rate=0.5,
                                    horizon=300.0, min_batch=6, seed=6)
        assert batched.mean_queue > eager.mean_queue
        assert batched.mean_response > eager.mean_response


class TestHeterogeneousWorkload:
    def test_typed_arrivals_served_on_typed_pool(self):
        m = MRSIN(omega(8), resource_types=["fft", "conv"] * 4)
        res = simulate_queueing(
            m, arrival_rate=0.4, horizon=150.0, seed=7,
            type_weights={"fft": 2.0, "conv": 1.0},
        )
        assert res.completed > 0

    def test_unknown_type_rejected(self):
        m = MRSIN(omega(8), resource_types=["fft", "conv"] * 4)
        with pytest.raises(ValueError, match="no resources of type"):
            simulate_queueing(m, type_weights={"gpu": 1.0})

    def test_homogeneous_default_unchanged(self):
        a = simulate_queueing(MRSIN(omega(8)), arrival_rate=0.5,
                              horizon=100.0, seed=9)
        b = simulate_queueing(MRSIN(omega(8)), arrival_rate=0.5,
                              horizon=100.0, seed=9, type_weights=None)
        assert a.completed == b.completed

"""Tests for the log-bucketed latency histogram: bucket geometry,
exact counting, quantiles, merging, and serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.histogram import QUANTILE_LABELS, LatencyHistogram


# ----------------------------------------------------------------------
# Bucket geometry
# ----------------------------------------------------------------------
class TestBucketGeometry:
    @given(value=st.integers(0, 2**50), fine_bits=st.integers(1, 10))
    @settings(max_examples=300, deadline=None)
    def test_bounds_contain_value(self, value, fine_bits):
        """Property: every value lies inside its own bucket's bounds."""
        hist = LatencyHistogram(fine_bits=fine_bits)
        low, high = hist.bucket_bounds(hist.bucket_index(value))
        assert low <= value <= high

    @given(fine_bits=st.integers(1, 8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_index_monotone_in_value(self, fine_bits, data):
        """Property: bucket_index never decreases as the value grows."""
        hist = LatencyHistogram(fine_bits=fine_bits)
        a = data.draw(st.integers(0, 2**40))
        b = data.draw(st.integers(a, a + 2**20))
        assert hist.bucket_index(a) <= hist.bucket_index(b)

    @given(fine_bits=st.integers(1, 10), tier=st.integers(0, 40))
    @settings(max_examples=200, deadline=None)
    def test_powers_of_two_are_boundaries(self, fine_bits, tier):
        """Every power of two starts a bucket — the property the
        service's legacy tick-multiple wait buckets rely on."""
        hist = LatencyHistogram(fine_bits=fine_bits)
        value = 1 << tier
        assert hist.bucket_bounds(hist.bucket_index(value))[0] == value

    def test_fine_range_buckets_are_exact(self):
        hist = LatencyHistogram(fine_bits=4)
        for value in range(16):
            assert hist.bucket_bounds(hist.bucket_index(value)) == (value, value)

    def test_relative_error_bounded(self):
        hist = LatencyHistogram(fine_bits=7)
        for value in (1000, 12345, 10**6, 2**31 + 17):
            low, high = hist.bucket_bounds(hist.bucket_index(value))
            assert (high - low + 1) <= max(value >> 7, 1) * 2

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            LatencyHistogram(fine_bits=0)
        with pytest.raises(ValueError):
            LatencyHistogram().bucket_bounds(-1)


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
class TestRecording:
    def test_counts_and_summary_stats(self):
        hist = LatencyHistogram()
        for v in (5, 5, 300, 7000):
            hist.record(v)
        assert hist.count == 4
        assert hist.total == 5 + 5 + 300 + 7000
        assert hist.min_value == 5
        assert hist.max_value == 7000
        assert hist.mean == pytest.approx((5 + 5 + 300 + 7000) / 4)

    def test_weighted_record(self):
        hist = LatencyHistogram()
        hist.record(9, n=1000)
        assert hist.count == 1000 and hist.total == 9000

    def test_rejects_non_integers_and_negatives(self):
        hist = LatencyHistogram()
        with pytest.raises(TypeError):
            hist.record(1.5)
        with pytest.raises(TypeError):
            hist.record(True)
        with pytest.raises(ValueError):
            hist.record(-1)
        with pytest.raises(ValueError):
            hist.record(1, n=0)

    def test_empty_histogram_reports_zeros(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(99) == 0
        assert hist.percentiles() == {label: 0 for label, _, _ in QUANTILE_LABELS}


# ----------------------------------------------------------------------
# Quantiles
# ----------------------------------------------------------------------
class TestQuantiles:
    def test_exact_in_fine_range(self):
        """Below 2**fine_bits every value has its own bucket, so
        quantiles are exact order statistics."""
        hist = LatencyHistogram(fine_bits=7)
        for v in range(1, 101):  # 1..100, all < 128
            hist.record(v)
        assert hist.quantile(50) == 50
        assert hist.quantile(90) == 90
        assert hist.quantile(99) == 99
        assert hist.quantile(100) == 100

    @given(
        samples=st.lists(st.integers(0, 2**20), min_size=1, max_size=200),
        num_den=st.sampled_from([(50, 100), (90, 100), (99, 100), (999, 1000)]),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantile_upper_bounds_true_order_statistic(self, samples, num_den):
        """Property: the reported quantile never undershoots the true
        sample and overshoots by at most one bucket width."""
        num, den = num_den
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        rank = max(1, -(-num * len(samples) // den))
        truth = sorted(samples)[rank - 1]
        reported = hist.quantile(num, den)
        low, high = hist.bucket_bounds(hist.bucket_index(truth))
        assert truth <= reported <= min(high, hist.max_value)

    def test_quantile_never_exceeds_max(self):
        hist = LatencyHistogram()
        hist.record(1_000_001)
        assert hist.quantile(999, 1000) == 1_000_001

    def test_bad_quantiles(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.quantile(101, 100)
        with pytest.raises(ValueError):
            hist.quantile(-1, 100)
        with pytest.raises(ValueError):
            hist.quantile(1, 0)


# ----------------------------------------------------------------------
# Exact threshold counts
# ----------------------------------------------------------------------
class TestCountBelow:
    @given(
        samples=st.lists(st.integers(0, 2**16), min_size=0, max_size=200),
        power=st.integers(0, 17),
    )
    @settings(max_examples=150, deadline=None)
    def test_exact_at_powers_of_two(self, samples, power):
        """Property: count_below at any power of two equals the exact
        number of smaller samples."""
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        threshold = 1 << power
        assert hist.count_below(threshold) == sum(s < threshold for s in samples)

    def test_exact_in_fine_range(self):
        hist = LatencyHistogram(fine_bits=7)
        for v in (3, 50, 100, 127):
            hist.record(v)
        assert hist.count_below(51) == 2
        assert hist.count_below(128) == 4

    def test_non_boundary_threshold_raises(self):
        hist = LatencyHistogram(fine_bits=2)
        with pytest.raises(ValueError, match="boundary"):
            hist.count_below(9)  # tier [8,16) at fine_bits=2 → buckets of 2
        with pytest.raises(ValueError):
            hist.count_below(-1)


# ----------------------------------------------------------------------
# Merge and serialisation
# ----------------------------------------------------------------------
class TestMergeAndSerialise:
    @given(
        a=st.lists(st.integers(0, 2**24), max_size=100),
        b=st.lists(st.integers(0, 2**24), max_size=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_recording_everything(self, a, b):
        """Property: merging shard histograms is lossless — identical
        buckets, counts, totals, and extremes to one big histogram."""
        ha, hb, hall = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for s in a:
            ha.record(s)
            hall.record(s)
        for s in b:
            hb.record(s)
            hall.record(s)
        ha.merge(hb)
        assert ha.to_dict() == hall.to_dict()

    def test_merge_requires_same_resolution(self):
        with pytest.raises(ValueError):
            LatencyHistogram(fine_bits=7).merge(LatencyHistogram(fine_bits=8))

    def test_dict_round_trip_preserves_queries(self):
        hist = LatencyHistogram()
        for v in (1, 5, 300, 300, 7000, 123456):
            hist.record(v)
        back = LatencyHistogram.from_dict(hist.to_dict())
        assert back.count == hist.count
        assert back.total == hist.total
        assert back.min_value == hist.min_value
        assert back.max_value == hist.max_value
        assert back.percentiles() == hist.percentiles()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict({"fine_bits": "x", "buckets": {}})
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict({"fine_bits": 7, "buckets": {"0": 0}})
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(
                {"fine_bits": 7, "buckets": {"0": 2}, "count": 3}
            )


# ----------------------------------------------------------------------
# Cross-process use (the fabric ships histograms between processes)
# ----------------------------------------------------------------------
class TestCrossProcess:
    def test_pickle_round_trip_preserves_queries(self):
        """The broker receives pickled per-cell histograms over pipes;
        a round-trip must preserve every query exactly."""
        import pickle

        hist = LatencyHistogram()
        for value in (0, 1, 7, 300, 300, 8191, 10**9):
            hist.record(value)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.to_dict() == hist.to_dict()
        assert clone.percentiles() == hist.percentiles()
        assert clone.count_below(1024) == hist.count_below(1024)
        # The clone is independent state, not a shared view.
        clone.record(5)
        assert clone.count == hist.count + 1

    def test_merge_unequal_populations(self):
        """Merging a busy cell into a nearly idle one keeps exact
        counts, extremes, and totals (no averaging artifacts)."""
        busy, idle = LatencyHistogram(), LatencyHistogram()
        for value in range(1000):
            busy.record(value)
        idle.record(2**20)
        idle.merge(busy)
        assert idle.count == 1001
        assert idle.min_value == 0
        assert idle.max_value == 2**20
        assert idle.total == sum(range(1000)) + 2**20
        # The single huge sample is the strict maximum of the merged
        # population, so the top quantile's bucket must contain it.
        low, high = idle.bucket_bounds(idle.bucket_index(2**20))
        assert low <= idle.quantile(1001, 1001) <= high

    @given(
        shards=st.lists(
            st.lists(st.integers(0, 2**30), max_size=60),
            min_size=2,
            max_size=5,
        ),
        numerator=st.integers(1, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_then_quantile_matches_single_histogram(
        self, shards, numerator
    ):
        """Property: quantiles of per-shard histograms merged pairwise
        equal quantiles of one histogram that saw every sample — the
        fabric's merged wait/tick percentiles are exact, not an
        approximation over shards."""
        merged = LatencyHistogram()
        union = LatencyHistogram()
        for shard in shards:
            hist = LatencyHistogram()
            for value in shard:
                hist.record(value)
                union.record(value)
            merged.merge(hist)
        assert merged.to_dict() == union.to_dict()
        if union.count:
            assert merged.quantile(numerator) == union.quantile(numerator)

"""Tests for the util package: RNG, tables, counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.counters import OpCounter
from repro.util.rng import DEFAULT_SEED, make_rng, spawn_rngs
from repro.util.tables import Table, format_table


class TestRng:
    def test_none_is_deterministic(self):
        a = make_rng(None).integers(0, 1 << 30)
        b = make_rng(None).integers(0, 1 << 30)
        assert a == b

    def test_int_seed(self):
        assert make_rng(5).integers(0, 1 << 30) == make_rng(5).integers(0, 1 << 30)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_independence(self):
        kids = spawn_rngs(0, 3)
        draws = [k.integers(0, 1 << 30) for k in kids]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [g.integers(0, 100) for g in spawn_rngs(9, 4)]
        b = [g.integers(0, 100) for g in spawn_rngs(9, 4)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []


class TestTables:
    def test_basic_render(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "--" in lines[2]
        assert "33" in lines[4]

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_accumulating_table(self):
        t = Table(["k", "v"], title="acc")
        t.add_row("x", 1)
        t.add_row("y", 2)
        out = t.render()
        assert out.count("\n") == 4  # title + header + sep + 2 rows

    def test_column_alignment(self):
        t = Table(["name", "n"])
        t.add_row("longvaluehere", 1)
        t.add_row("s", 22)
        lines = t.render().splitlines()
        assert len({len(l) for l in lines[0:1]}) == 1


class TestCounters:
    def test_charge_and_total(self):
        c = OpCounter()
        c.charge("a")
        c.charge("a", 4)
        c.charge("b", 2)
        assert c["a"] == 5
        assert c.total() == 7.0

    def test_weighted_total(self):
        c = OpCounter()
        c.charge("a", 3)
        c.charge("b", 2)
        assert c.total({"a": 10.0}) == 32.0  # missing weight defaults to 1

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.charge("x", 1)
        b.charge("x", 2)
        b.charge("y", 3)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_reset(self):
        c = OpCounter()
        c.charge("z", 9)
        c.reset()
        assert c.total() == 0.0

    def test_missing_key_zero(self):
        assert OpCounter()["nothing"] == 0


@given(
    rows=st.lists(st.lists(st.integers(-1000, 1000), min_size=2, max_size=2), max_size=6)
)
@settings(max_examples=30, deadline=None)
def test_property_table_always_rectangular(rows):
    """Property: rendering any integer rows yields aligned columns."""
    text = format_table(["c1", "c2"], rows)
    lines = text.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1

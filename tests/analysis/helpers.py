"""Shared fixture machinery for the static-analysis tests.

Rules scope themselves by the path *under the repro package root*
(``flows/graph.py``, ``service/server.py``), so every fixture snippet
is written into a synthetic ``<tmp>/repro/<modpath>`` tree before the
engine sees it.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine, LintReport


def lint_snippet(
    tmp_path: Path,
    source: str,
    modpath: str = "core/sample.py",
    rules=None,
) -> LintReport:
    """Lint ``source`` as if it lived at ``src/repro/<modpath>``."""
    target = tmp_path / "repro" / modpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return LintEngine(rules).run([target])


def rule_ids(report: LintReport) -> list[str]:
    """The rule ids of the report's active findings, in order."""
    return [f.rule for f in report.findings]

"""Fixture suite for the flow-sensitive rules R006-R008.

Each rule gets known-bad snippets (including the three historical
bugs that motivated the analyzer: the PR-2 cancelled-acquire leak,
the PR-6 late-LEASE leak, and an unhandled-request-type server
variant) and known-good snippets proving the guards the codebase
actually uses — re-read after await, lock regions, try/finally
release, acquire-side timeouts — do not trip the rules.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import (
    AwaitInterleavingRaces,
    LintEngine,
    ResourceEscape,
    WireConformance,
)

from tests.analysis.helpers import lint_snippet, rule_ids


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip("\n")


# ----------------------------------------------------------------------
# R006: await-interleaving races
# ----------------------------------------------------------------------

R006_BAD_STALE = snippet(
    """
    class Pool:
        async def bump(self):
            depth = self.depth
            await self.flush()
            self.depth = depth + 1
    """
)

R006_BAD_SINGLE_STATEMENT = snippet(
    """
    class Pool:
        async def bump(self):
            self.count += await self.poll()
    """
)

R006_BAD_GLOBAL = snippet(
    """
    COUNTER = 0


    class Pool:
        async def bump(self):
            global COUNTER
            COUNTER += await self.poll()
    """
)

R006_BAD_INTERPROCEDURAL = snippet(
    """
    class Pool:
        async def bump(self):
            depth = self.depth
            self._drain()
            self.depth = depth + 1

        async def _drain(self):
            await self.flush()
    """
)

R006_GOOD_REREAD = snippet(
    """
    class Pool:
        async def bump(self):
            await self.flush()
            depth = self.depth
            self.depth = depth + 1
    """
)

R006_GOOD_LOCKED = snippet(
    """
    class Pool:
        async def bump(self):
            async with self._lock:
                depth = self.depth
                await self.flush()
                self.depth = depth + 1
    """
)


class TestAwaitInterleavingRaces:
    RULES = [AwaitInterleavingRaces()]

    def test_stale_read_across_await(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_BAD_STALE, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == ["R006"]
        assert "read before an await" in report.findings[0].message

    def test_rmw_spanning_await_in_one_statement(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_BAD_SINGLE_STATEMENT, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == ["R006"]
        assert "read-modify-write" in report.findings[0].message

    def test_module_global_rmw(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_BAD_GLOBAL, "faults/sample.py", self.RULES
        )
        assert rule_ids(report) == ["R006"]
        assert "global COUNTER" in report.findings[0].message

    def test_same_module_coroutine_call_is_a_suspension(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_BAD_INTERPROCEDURAL, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == ["R006"]

    def test_reread_after_await_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_GOOD_REREAD, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == []

    def test_lock_guarded_region_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_GOOD_LOCKED, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == []

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path, R006_BAD_STALE, "core/sample.py", self.RULES
        )
        assert rule_ids(report) == []


# ----------------------------------------------------------------------
# R007: lease/resource escape analysis
# ----------------------------------------------------------------------

R007_BAD_CANCELLED_ACQUIRE = snippet(
    """
    class Handler:
        async def handle(self, conn, frame):
            lease = await self.service.acquire(frame.payload)
            await self._send(conn, make_lease(frame.request_id, lease.lease_id))
            self.leases[lease.lease_id] = lease
    """
)

R007_BAD_LATE_LEASE = snippet(
    """
    class Handler:
        async def grab(self, request):
            return await asyncio.wait_for(self.pool.acquire(request), 0.1)
    """
)

R007_BAD_LEAK_ON_EXIT = snippet(
    """
    class Handler:
        async def grab(self, request):
            lease = await self.pool.acquire(request)
            return None
    """
)

R007_BAD_CANCEL_BETWEEN = snippet(
    """
    class Handler:
        async def hold(self, request):
            lease = await self.pool.acquire(request)
            await asyncio.sleep(0.1)
            self.pool.release(lease)
    """
)

R007_GOOD_FINALLY = snippet(
    """
    class Handler:
        async def handle(self, request):
            lease = await self.pool.acquire(request)
            try:
                await self.work(lease.lease_id)
            finally:
                self.pool.release(lease)
    """
)

R007_GOOD_ACQUIRE_TIMEOUT = snippet(
    """
    class Handler:
        async def grab(self, request):
            lease = await self.pool.acquire(request, timeout=0.1)
            self.leases[request] = lease
    """
)


class TestResourceEscape:
    RULES = [ResourceEscape()]

    def test_pr2_cancelled_acquire_leak_shape(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_BAD_CANCELLED_ACQUIRE, "wire/handlers.py", self.RULES
        )
        assert rule_ids(report) == ["R007"]
        assert "PR-2" in report.findings[0].message

    def test_pr6_late_lease_wait_for(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_BAD_LATE_LEASE, "wire/handlers.py", self.RULES
        )
        assert rule_ids(report) == ["R007"]
        assert "late-LEASE" in report.findings[0].message

    def test_leak_on_normal_exit(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_BAD_LEAK_ON_EXIT, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == ["R007"]
        assert "still holds its resource" in report.findings[0].message

    def test_cancellation_between_acquire_and_release(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_BAD_CANCEL_BETWEEN, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == ["R007"]
        assert "cancellation or exception" in report.findings[0].message

    def test_try_finally_release_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_GOOD_FINALLY, "service/sample.py", self.RULES
        )
        assert rule_ids(report) == []

    def test_acquire_side_timeout_is_clean(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_GOOD_ACQUIRE_TIMEOUT, "wire/handlers.py", self.RULES
        )
        assert rule_ids(report) == []

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path, R007_BAD_CANCEL_BETWEEN, "core/sample.py", self.RULES
        )
        assert rule_ids(report) == []


# ----------------------------------------------------------------------
# R008: wire-protocol conformance
# ----------------------------------------------------------------------

FIXTURE_PROTOCOL = snippet(
    """
    PUSH_ID = 0
    REQUEST_KINDS = ("ACQUIRE", "PING")
    REPLY_KINDS = ("LEASE", "ERROR", "PONG")
    REPLY_SCHEMA = {
        "ACQUIRE": ("LEASE", "ERROR"),
        "PING": ("PONG",),
    }
    PUSH_KINDS = ("ERROR",)


    def make_lease(request_id, lease_id):
        return Frame("LEASE", request_id, {"lease": lease_id})


    def make_error(request_id, detail):
        return Frame("ERROR", request_id, {"detail": detail})


    def make_pong(request_id):
        return Frame("PONG", request_id, {})
    """
)

GOOD_SERVER = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._handle_acquire(conn, frame)
            elif frame.kind == "PING":
                await self._send(conn, make_pong(frame.request_id))
            else:
                await self._send(conn, make_error(frame.request_id, "unknown"))

        async def _handle_acquire(self, conn, frame):
            try:
                lease = await self.service.acquire(frame.payload)
            except RuntimeError as exc:
                await self._send(conn, make_error(frame.request_id, str(exc)))
                return
            await self._send(conn, make_lease(frame.request_id, lease.lease_id))
    """
)

BAD_MISSING_PING = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._handle_acquire(conn, frame)
            else:
                await self._send(conn, make_error(frame.request_id, "unknown"))

        async def _handle_acquire(self, conn, frame):
            await self._send(conn, make_lease(frame.request_id, 1))
    """
)

BAD_ZERO_REPLY = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._handle_acquire(conn, frame)
            elif frame.kind == "PING":
                await self._send(conn, make_pong(frame.request_id))

        async def _handle_acquire(self, conn, frame):
            lease = await self.service.acquire(frame.payload)
            if conn.closed:
                return
            await self._send(conn, make_lease(frame.request_id, lease.lease_id))
    """
)

BAD_DOUBLE_REPLY = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._handle_acquire(conn, frame)
            elif frame.kind == "PING":
                await self._send(conn, make_pong(frame.request_id))

        async def _handle_acquire(self, conn, frame):
            await self._send(conn, make_lease(frame.request_id, 1))
            await self._send(conn, make_lease(frame.request_id, 2))
    """
)

BAD_WRONG_INLINE_REPLY = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._send(conn, make_lease(frame.request_id, 1))
            elif frame.kind == "PING":
                await self._send(conn, make_lease(frame.request_id, 2))
    """
)

BAD_DEAD_BRANCH = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._send(conn, make_lease(frame.request_id, 1))
            elif frame.kind == "PING":
                self.pings = self.pings + 1
    """
)

BAD_PUSH_KIND = snippet(
    """
    class Server:
        async def _dispatch(self, conn, frame):
            if frame.kind == "ACQUIRE":
                await self._send(conn, make_lease(frame.request_id, 1))
            elif frame.kind == "PING":
                await self._send(conn, make_pong(frame.request_id))

        async def _notify(self, conn):
            await self._send(conn, make_lease(PUSH_ID, 9))
    """
)


def lint_wire_pair(
    tmp_path: Path,
    server_source: str,
    protocol_source: str | None = FIXTURE_PROTOCOL,
    rules=None,
):
    """Lint ``server_source`` as ``repro/wire/server.py`` next to a protocol."""
    wire = tmp_path / "repro" / "wire"
    wire.mkdir(parents=True, exist_ok=True)
    if protocol_source is not None:
        (wire / "protocol.py").write_text(protocol_source, encoding="utf-8")
    server = wire / "server.py"
    server.write_text(server_source, encoding="utf-8")
    return LintEngine(rules or [WireConformance()]).run([server])


class TestWireConformance:
    def test_conforming_server_is_clean(self, tmp_path):
        report = lint_wire_pair(tmp_path, GOOD_SERVER)
        assert rule_ids(report) == []

    def test_unhandled_request_kind(self, tmp_path):
        report = lint_wire_pair(tmp_path, BAD_MISSING_PING)
        assert rule_ids(report) == ["R008"]
        assert "'PING' is never dispatched" in report.findings[0].message

    def test_zero_reply_path(self, tmp_path):
        report = lint_wire_pair(tmp_path, BAD_ZERO_REPLY)
        assert rule_ids(report) == ["R008"]
        assert "wait forever" in report.findings[0].message

    def test_double_reply_path(self, tmp_path):
        report = lint_wire_pair(tmp_path, BAD_DOUBLE_REPLY)
        assert rule_ids(report) == ["R008"]
        assert "second correlated reply" in report.findings[0].message

    def test_inadmissible_inline_reply(self, tmp_path):
        report = lint_wire_pair(tmp_path, BAD_WRONG_INLINE_REPLY)
        assert rule_ids(report) == ["R008"]
        assert "'LEASE' reply sent for a 'PING' request" in report.findings[0].message

    def test_dead_dispatch_branch(self, tmp_path):
        report = lint_wire_pair(tmp_path, BAD_DEAD_BRANCH)
        assert rule_ids(report) == ["R008"]
        assert "the client will hang" in report.findings[0].message

    def test_push_of_non_push_kind(self, tmp_path):
        report = lint_wire_pair(tmp_path, BAD_PUSH_KIND)
        assert rule_ids(report) == ["R008"]
        assert "pushed unprompted" in report.findings[0].message

    def test_missing_protocol_module(self, tmp_path):
        report = lint_wire_pair(tmp_path, GOOD_SERVER, protocol_source=None)
        assert rule_ids(report) == ["R008"]
        assert "no parseable protocol.py" in report.findings[0].message

    def test_other_wire_modules_are_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path, BAD_MISSING_PING, "wire/handlers.py", [WireConformance()]
        )
        assert rule_ids(report) == []


class TestRealTree:
    def test_real_wire_server_conforms(self):
        import repro.wire.server as server_module

        path = Path(server_module.__file__)
        report = LintEngine([WireConformance()]).run([path])
        assert report.findings == []
        assert [finding.rule for finding, _ in report.suppressed] == ["R008"]

"""Engine-level behaviour: suppressions, JSON output, stats, errors."""

import json
import textwrap

import pytest

from repro.analysis import LintEngine, LintError, META_RULE
from tests.analysis.helpers import lint_snippet, rule_ids


def snippet(code: str) -> str:
    return textwrap.dedent(code).lstrip("\n")


class TestSuppressions:
    def test_justified_suppression_silences_finding(self, tmp_path):
        src = snippet("""
            def check(x):
                assert x  # repro: noqa R001 -- exercised by the fixture tests
        """)
        report = lint_snippet(tmp_path, src)
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, supp = report.suppressed[0]
        assert finding.rule == "R001"
        assert supp.justification == "exercised by the fixture tests"

    def test_suppression_without_justification_is_a_finding(self, tmp_path):
        src = snippet("""
            def check(x):
                assert x  # repro: noqa R001
        """)
        report = lint_snippet(tmp_path, src)
        # The original finding stays active AND the bad noqa is reported.
        assert sorted(rule_ids(report)) == [META_RULE, "R001"]
        meta = [f for f in report.findings if f.rule == META_RULE][0]
        assert "justification" in meta.message

    def test_suppression_for_unknown_rule(self, tmp_path):
        src = snippet("""
            x = 1  # repro: noqa R777 -- no such rule
        """)
        report = lint_snippet(tmp_path, src)
        assert rule_ids(report) == [META_RULE]
        assert "R777" in report.findings[0].message

    def test_unused_suppression_is_a_finding(self, tmp_path):
        src = snippet("""
            x = 1  # repro: noqa R001 -- nothing here actually asserts
        """)
        report = lint_snippet(tmp_path, src)
        assert rule_ids(report) == [META_RULE]
        assert "unused" in report.findings[0].message

    def test_suppression_only_covers_its_own_rule(self, tmp_path):
        src = snippet("""
            def check(x):
                assert x  # repro: noqa R002 -- wrong rule id for an assert
        """)
        report = lint_snippet(tmp_path, src)
        # R001 stays active; the R002 suppression is unused.
        assert sorted(rule_ids(report)) == [META_RULE, "R001"]

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        src = snippet('''
            def doc():
                """Explain that '# repro: noqa R001 -- why' suppresses."""
                return 1
        ''')
        report = lint_snippet(tmp_path, src)
        assert report.findings == []
        assert report.suppressions == []

    def test_multi_rule_suppression(self, tmp_path):
        src = snippet("""
            def check(net):
                assert net._hidden  # repro: noqa R001 R004 -- fixture exercising both
        """)
        report = lint_snippet(tmp_path, src)
        assert report.findings == []
        assert {f.rule for f, _ in report.suppressed} == {"R001", "R004"}


class TestReporting:
    def test_json_output_shape(self, tmp_path):
        src = snippet("""
            def check(x):
                assert x
        """)
        report = lint_snippet(tmp_path, src)
        doc = json.loads(report.to_json())
        assert doc["stats"]["findings"] == 1
        (f,) = doc["findings"]
        assert f["rule"] == "R001"
        assert f["line"] == 2
        assert f["path"].endswith("sample.py")

    def test_stats_counts_by_rule(self, tmp_path):
        src = snippet("""
            import random

            def check(x):
                assert x
                assert x + 1
        """)
        stats = lint_snippet(tmp_path, src).stats()
        assert stats["by_rule"] == {"R001": 2, "R002": 1}
        assert stats["files_checked"] == 1

    def test_exit_codes(self, tmp_path):
        clean = lint_snippet(tmp_path, "x = 1\n")
        assert clean.exit_code == 0
        dirty = lint_snippet(tmp_path, "assert True\n")
        assert dirty.exit_code == 1

    def test_finding_render_is_clickable(self, tmp_path):
        report = lint_snippet(tmp_path, "assert True\n")
        rendered = report.findings[0].render()
        path, line, col, rest = rendered.split(":", 3)
        assert path.endswith("sample.py")
        assert int(line) == 1
        assert rest.lstrip().startswith("R001")


class TestEngineEdges:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        report = lint_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(report) == [META_RULE]
        assert "syntax error" in report.findings[0].message

    def test_missing_path_raises_lint_error(self):
        with pytest.raises(LintError):
            LintEngine().run(["/no/such/path/anywhere"])

    def test_deterministic_ordering(self, tmp_path):
        src = snippet("""
            import random

            def check(x):
                assert x
        """)
        a = lint_snippet(tmp_path, src)
        b = lint_snippet(tmp_path, src)
        assert [f.render() for f in a.findings] == [f.render() for f in b.findings]

"""One known-good and one known-bad fixture per lint rule (R001-R005)."""

import textwrap

from tests.analysis.helpers import lint_snippet, rule_ids


def snippet(code: str) -> str:
    return textwrap.dedent(code).lstrip("\n")


class TestR001Assert:
    BAD = snippet("""
        def check(x):
            assert x > 0, "positive"
            return x
    """)
    GOOD = snippet("""
        def check(x):
            if x <= 0:
                raise ValueError(f"x must be positive, got {x}")
            return x
    """)

    def test_bad(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD)
        assert rule_ids(report) == ["R001"]
        (f,) = report.findings
        assert f.line == 2
        assert "python -O" in f.message or "'-O'" in f.message

    def test_good(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD).findings == []


class TestR002Determinism:
    BAD_IMPORT = snippet("""
        import random

        def pick(items):
            return random.choice(items)
    """)
    BAD_WALL_CLOCK = snippet("""
        import time

        def stamp():
            return time.time()
    """)
    BAD_UNSEEDED = snippet("""
        import numpy as np

        def rng():
            return np.random.default_rng()
    """)
    BAD_LEGACY = snippet("""
        import numpy as np

        def draw():
            return np.random.rand()
    """)
    BAD_SET_ITER = snippet("""
        def schedule(pending):
            for req in set(pending):
                yield req
    """)
    BAD_SET_LITERAL_COMP = snippet("""
        def order(a, b, c):
            return [x for x in {a, b, c}]
    """)
    GOOD = snippet("""
        import numpy as np

        def pick(items, rng: np.random.Generator):
            order = sorted(set(items))
            return order[int(rng.integers(len(order)))]
    """)

    def test_bad_import(self, tmp_path):
        assert rule_ids(lint_snippet(tmp_path, self.BAD_IMPORT)) == ["R002"]

    def test_bad_wall_clock(self, tmp_path):
        assert rule_ids(lint_snippet(tmp_path, self.BAD_WALL_CLOCK)) == ["R002"]

    def test_bad_unseeded_rng(self, tmp_path):
        assert rule_ids(lint_snippet(tmp_path, self.BAD_UNSEEDED)) == ["R002"]

    def test_bad_legacy_global_rng(self, tmp_path):
        assert rule_ids(lint_snippet(tmp_path, self.BAD_LEGACY)) == ["R002"]

    def test_bad_set_iteration(self, tmp_path):
        assert rule_ids(lint_snippet(tmp_path, self.BAD_SET_ITER)) == ["R002"]

    def test_bad_set_literal_in_comprehension(self, tmp_path):
        assert rule_ids(lint_snippet(tmp_path, self.BAD_SET_LITERAL_COMP)) == ["R002"]

    def test_good(self, tmp_path):
        # sorted(set(...)) restores a deterministic order; seeded
        # Generator draws are the sanctioned randomness.
        assert lint_snippet(tmp_path, self.GOOD).findings == []

    def test_exempt_modules(self, tmp_path):
        assert lint_snippet(
            tmp_path, self.BAD_UNSEEDED, modpath="util/rng.py"
        ).findings == []
        assert lint_snippet(
            tmp_path, self.BAD_WALL_CLOCK, modpath="service/clock.py"
        ).findings == []


class TestR003Integrality:
    BAD_ANNOTATION = snippet("""
        from dataclasses import dataclass

        @dataclass
        class Arc:
            capacity: float
            flow: int = 0
    """)
    BAD_PARAM = snippet("""
        def solve(net, target_flow: float):
            return target_flow
    """)
    BAD_ASSIGN = snippet("""
        def reset(arc):
            arc.flow = 0.0
    """)
    BAD_COERCION = snippet("""
        def widen(arc):
            return float(arc.capacity)
    """)
    GOOD = snippet("""
        def reset(arc):
            arc.flow = 0
            arc.cost = 0.5  # costs may stay float (min-cost needs them)
            eps = 1e-9      # tolerances are not flow values
            return eps
    """)

    def test_bad_annotation(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD_ANNOTATION, modpath="flows/graph2.py")
        assert rule_ids(report) == ["R003"]

    def test_bad_param(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD_PARAM, modpath="flows/solver2.py")
        assert rule_ids(report) == ["R003"]

    def test_bad_assign(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD_ASSIGN, modpath="core/transform.py")
        assert rule_ids(report) == ["R003"]

    def test_bad_coercion(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD_COERCION, modpath="core/incremental.py")
        assert rule_ids(report) == ["R003"]

    BAD_RETURN_ANNOTATION = snippet("""
        def blocking_flow(net, layered) -> float:
            return net.value
    """)
    BAD_RETURN_LITERAL = snippet("""
        def max_flow(net, source, sink):
            if source not in net:
                return 0.0
            return net.value
    """)
    GOOD_COST_RETURN = snippet("""
        def min_cost_flow_total(net) -> float:
            return sum(a.cost for a in net.arcs)
    """)
    GOOD_NESTED_HELPER = snippet("""
        def push_flow(net):
            def weight(arc) -> float:
                return 0.5
            return sum(1 for a in net.arcs if weight(a) > 0)
    """)

    def test_good(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD, modpath="flows/clean.py").findings == []

    def test_out_of_scope_module(self, tmp_path):
        # Float arithmetic outside the flow modules is not R003's business.
        assert lint_snippet(tmp_path, self.BAD_ASSIGN, modpath="sim/rates.py").findings == []

    def test_bad_flow_return_annotation(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.BAD_RETURN_ANNOTATION, modpath="flows/solver3.py"
        )
        assert rule_ids(report) == ["R003"]
        (f,) = report.findings
        assert "blocking_flow" in f.message

    def test_bad_flow_return_literal(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.BAD_RETURN_LITERAL, modpath="flows/solver4.py"
        )
        assert rule_ids(report) == ["R003"]
        (f,) = report.findings
        assert f.line == 3

    def test_cost_functions_may_return_float(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.GOOD_COST_RETURN, modpath="flows/costs2.py"
        )
        assert report.findings == []

    def test_nested_helpers_not_attributed_to_flow_function(self, tmp_path):
        # The float return belongs to the nested cost helper, not to
        # the enclosing flow-named function's own body.
        report = lint_snippet(
            tmp_path, self.GOOD_NESTED_HELPER, modpath="flows/helpers2.py"
        )
        assert report.findings == []

    def test_relaxation_modules_exempt_from_return_checks(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.BAD_RETURN_ANNOTATION, modpath="flows/multicommodity.py"
        )
        assert report.findings == []


class TestR004Encapsulation:
    BAD = snippet("""
        def detach(net):
            net._out["sink"].pop()
    """)
    GOOD = snippet("""
        class Engine:
            def __init__(self):
                self._cache = {}

            def merge(self, other: "Engine"):
                # Module-private: this module owns _cache.
                self._cache.update(other._cache)
    """)

    def test_bad(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD)
        assert rule_ids(report) == ["R004"]
        assert "_out" in report.findings[0].message

    def test_good_same_module_access(self, tmp_path):
        assert lint_snippet(tmp_path, self.GOOD).findings == []

    def test_dunder_ignored(self, tmp_path):
        src = snippet("""
            def name_of(obj):
                return obj.__class__.__name__
        """)
        assert lint_snippet(tmp_path, src).findings == []


class TestR005AsyncioHygiene:
    BAD_SLEEP = snippet("""
        import time

        async def tick(self):
            time.sleep(1.0)
    """)
    BAD_SOLVER_LOOP = snippet("""
        async def drain(self, scheduler, batches):
            for batch in batches:
                scheduler.schedule(batch)
    """)
    GOOD = snippet("""
        async def tick_loop(self, scheduler, clock):
            while True:
                mapping = scheduler.schedule(self.pending)
                self.apply(mapping)
                await clock.sleep(self.interval)
    """)

    def test_bad_blocking_sleep(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD_SLEEP, modpath="service/server2.py")
        assert rule_ids(report) == ["R005"]
        assert "time.sleep" in report.findings[0].message

    def test_bad_solver_loop(self, tmp_path):
        report = lint_snippet(tmp_path, self.BAD_SOLVER_LOOP, modpath="service/server2.py")
        assert rule_ids(report) == ["R005"]
        assert "yield point" in report.findings[0].message

    def test_good_loop_with_await(self, tmp_path):
        # One batched solve per tick with an await in the loop is the
        # service's designed shape.
        assert lint_snippet(tmp_path, self.GOOD, modpath="service/server2.py").findings == []

    def test_wire_modules_in_scope(self, tmp_path):
        # The TCP front-end shares the event loop with the tick loop,
        # so wire/ is held to the same hygiene as service/.
        report = lint_snippet(tmp_path, self.BAD_SLEEP, modpath="wire/server2.py")
        assert rule_ids(report) == ["R005"]

    def test_out_of_scope_module(self, tmp_path):
        # R005 covers service/ and wire/ only; sync code elsewhere may
        # block freely.
        assert lint_snippet(tmp_path, self.BAD_SLEEP, modpath="sim/runner2.py").findings == []

"""Tests for the git-scoped ``repro lint --changed`` fast path.

Each test builds a throwaway git repository containing a synthetic
``repro`` package, commits a clean seed, then dirties part of it: the
changed-file discovery must return exactly the touched files (staged,
unstaged, or untracked), and linting just those files must agree with
a full-tree run restricted to them.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.analysis import LintEngine, LintError
from repro.analysis.engine import changed_files
from repro.cli import main

CLEAN = "LIMIT = 4\n"

DIRTY = (
    "def check(value):\n"
    "    assert value, 'bad input'\n"
    "    return value\n"
)


def _git(root: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t", *argv],
        cwd=root,
        check=True,
        capture_output=True,
    )


@pytest.fixture
def seeded_repo(tmp_path, monkeypatch):
    root = tmp_path / "proj"
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "untouched.py").write_text(CLEAN, encoding="utf-8")
    (pkg / "edited.py").write_text(CLEAN, encoding="utf-8")
    _git(root, "init", "-q")
    _git(root, "add", "-A")
    _git(root, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(root)
    return root


class TestChangedFiles:
    def test_clean_tree_has_no_changed_files(self, seeded_repo):
        assert changed_files([seeded_repo / "repro"]) == []

    def test_edited_and_untracked_files_are_found(self, seeded_repo):
        pkg = seeded_repo / "repro" / "core"
        (pkg / "edited.py").write_text(DIRTY, encoding="utf-8")
        (pkg / "brand_new.py").write_text(DIRTY, encoding="utf-8")
        found = changed_files([seeded_repo / "repro"])
        assert [p.name for p in found] == ["brand_new.py", "edited.py"]

    def test_staged_edits_are_found(self, seeded_repo):
        pkg = seeded_repo / "repro" / "core"
        (pkg / "edited.py").write_text(DIRTY, encoding="utf-8")
        _git(seeded_repo, "add", "-A")
        found = changed_files([seeded_repo / "repro"])
        assert [p.name for p in found] == ["edited.py"]

    def test_paths_outside_the_roots_are_excluded(self, seeded_repo):
        pkg = seeded_repo / "repro" / "core"
        (pkg / "edited.py").write_text(DIRTY, encoding="utf-8")
        elsewhere = seeded_repo / "scripts"
        elsewhere.mkdir()
        (elsewhere / "tool.py").write_text(DIRTY, encoding="utf-8")
        found = changed_files([seeded_repo / "repro"])
        assert [p.name for p in found] == ["edited.py"]

    def test_git_failure_raises_lint_error(self, seeded_repo, monkeypatch):
        monkeypatch.setenv("GIT_DIR", str(seeded_repo / "no-such-dir"))
        with pytest.raises(LintError):
            changed_files([seeded_repo / "repro"])


class TestChangedScopeMatchesFullRun:
    def test_scoped_findings_equal_full_findings_on_touched_files(
        self, seeded_repo
    ):
        pkg = seeded_repo / "repro" / "core"
        (pkg / "edited.py").write_text(DIRTY, encoding="utf-8")
        (pkg / "brand_new.py").write_text(DIRTY, encoding="utf-8")

        touched = changed_files([seeded_repo / "repro"])
        scoped = LintEngine().run(touched)
        full = LintEngine().run([seeded_repo / "repro"])

        touched_paths = {str(p) for p in touched}
        expected = [f for f in full.findings if f.path in touched_paths]
        assert [
            (f.rule, f.path, f.line) for f in scoped.findings
        ] == [(f.rule, f.path, f.line) for f in expected]
        assert scoped.findings, "fixture should produce at least one finding"

    def test_cli_changed_flag(self, seeded_repo, capsys):
        pkg = seeded_repo / "repro" / "core"
        (pkg / "edited.py").write_text(DIRTY, encoding="utf-8")
        code = main(["lint", "--changed", str(seeded_repo / "repro")])
        out = capsys.readouterr().out
        assert code == 1
        assert "edited.py" in out
        assert "untouched.py" not in out

    def test_cli_changed_flag_clean_tree(self, seeded_repo, capsys):
        code = main(["lint", "--changed", str(seeded_repo / "repro")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

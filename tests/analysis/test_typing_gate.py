"""The strict-typing gate: allowlist freeze, config sync, gated runner."""

import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.typing_gate import (
    EXIT_UNAVAILABLE,
    PERMISSIVE_ALLOWLIST,
    STRICT_FLAGS,
    STRICT_PACKAGES,
    mypy_available,
    mypy_command,
    run_typecheck,
)

# The recorded baseline.  Shrinking PERMISSIVE_ALLOWLIST (bringing a
# module up to strictness) is a normal PR: delete the entry here too.
# ADDING an entry is the failure mode this test exists to catch — new
# code is strict by birth.
ALLOWLIST_BASELINE = frozenset({
    "cli",
    "distributed.elements",
    "distributed.logic",
    "distributed.machine",
    "distributed.monitor",
    "distributed.simulator",
    "sim.blocking",
    "sim.queueing",
    "sim.runner",
    "sim.workload",
    "networks.render",
})


def repro_root() -> Path:
    return Path(repro.__file__).resolve().parent


class TestAllowlist:
    def test_allowlist_only_shrinks(self):
        grown = set(PERMISSIVE_ALLOWLIST) - ALLOWLIST_BASELINE
        assert not grown, (
            f"PERMISSIVE_ALLOWLIST grew by {sorted(grown)}; new modules must "
            "pass the strict gate instead of being allowlisted"
        )

    def test_allowlisted_modules_exist(self):
        for dotted in PERMISSIVE_ALLOWLIST:
            rel = Path(*dotted.split("."))
            candidates = [
                repro_root() / rel.with_suffix(".py"),
                repro_root() / rel / "__init__.py",
            ]
            assert any(c.is_file() for c in candidates), (
                f"allowlist entry '{dotted}' names no module; delete it"
            )

    def test_strict_packages_are_not_allowlisted(self):
        for dotted in PERMISSIVE_ALLOWLIST:
            top = dotted.split(".")[0]
            assert top not in STRICT_PACKAGES, (
                f"'{dotted}' is inside strict package '{top}'"
            )

    def test_pyproject_mirrors_typing_gate(self):
        """pyproject's mypy overrides stay in sync with the constants."""
        tomllib = pytest.importorskip("tomllib")
        pyproject = repro_root().parent.parent / "pyproject.toml"
        if not pyproject.is_file():
            pytest.skip("installed without a source checkout")
        cfg = tomllib.loads(pyproject.read_text())
        overrides = cfg["tool"]["mypy"]["overrides"]
        strict = next(o for o in overrides if not o.get("ignore_errors"))
        assert set(strict["module"]) == {f"repro.{p}.*" for p in STRICT_PACKAGES}
        permissive = next(o for o in overrides if o.get("ignore_errors"))
        assert set(permissive["module"]) == {f"repro.{m}" for m in PERMISSIVE_ALLOWLIST}


class TestRunner:
    def test_command_shape(self):
        cmd = mypy_command()
        assert cmd[:3] == (sys.executable, "-m", "mypy")
        for flag in STRICT_FLAGS:
            assert flag in cmd
        for pkg in STRICT_PACKAGES:
            assert any(arg.endswith(pkg) for arg in cmd)

    def test_run_typecheck_is_gated(self):
        """Never raises: passes, fails, or reports unavailability."""
        result = run_typecheck()
        if not mypy_available():
            assert result.exit_code == EXIT_UNAVAILABLE
            assert not result.available
            assert "mypy" in result.output
        else:
            assert result.exit_code in (0, 1, 2)
            assert result.available

    @pytest.mark.skipif(not mypy_available(), reason="mypy not installed")
    def test_strict_subset_passes_mypy(self):
        """The CI gate: flows/, core/, analysis/ are mypy-clean."""
        result = run_typecheck(strict_only=True)
        assert result.exit_code == 0, f"mypy findings:\n{result.output}"

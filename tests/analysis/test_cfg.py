"""CFG builder tests: routing determinism plus generative properties.

The hypothesis strategies generate arbitrarily nested async function
bodies (if/while/for/try-except/try-finally/async-with/async-for) and
assert the two structural invariants every downstream rule relies on:

- every node reachable from the entry can reach the normal exit or
  the error exit (no statement is silently trapped in the graph);
- the recorded await points are exactly the ``await`` expressions of
  the function, in source order, with none double-counted by the
  synthetic join nodes.

``break``/``continue`` threading through ``finally`` and the
interprocedural suspension rules are covered by deterministic cases
below (the generator omits bare jumps to keep every sample valid at
any nesting depth).
"""

from __future__ import annotations

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    EXCEPTION,
    build_cfg,
    iter_function_defs,
    module_coroutine_names,
)

SIMPLE_STATEMENTS = (
    "x = 1",
    "total = x + 1",
    "x = await op()",
    "await op()",
    "raise ValueError(x)",
    "return x",
)


def _indent(lines: list[str]) -> list[str]:
    return ["    " + line for line in lines]


@st.composite
def _statements(draw: st.DrawFn, depth: int) -> list[str]:
    count = draw(st.integers(min_value=1, max_value=3))
    out: list[str] = []
    for _ in range(count):
        out.extend(draw(_statement(depth)))
    return out


@st.composite
def _statement(draw: st.DrawFn, depth: int) -> list[str]:
    kinds = ["simple", "simple"]
    if depth > 0:
        kinds += [
            "if",
            "while",
            "for",
            "async_for",
            "async_with",
            "try_except",
            "try_finally",
            "try_full",
        ]
    kind = draw(st.sampled_from(kinds))
    if kind == "simple":
        return [draw(st.sampled_from(SIMPLE_STATEMENTS))]
    body = _indent(draw(_statements(depth - 1)))
    if kind == "if":
        lines = ["if x:"] + body
        if draw(st.booleans()):
            lines += ["else:"] + _indent(draw(_statements(depth - 1)))
        return lines
    if kind == "while":
        return ["while x:"] + body
    if kind == "for":
        return ["for item in items:"] + body
    if kind == "async_for":
        return ["async for item in source:"] + body
    if kind == "async_with":
        ctx = draw(st.sampled_from(["ctx()", "self._lock"]))
        return [f"async with {ctx}:"] + body
    lines = ["try:"] + body
    if kind in ("try_except", "try_full"):
        lines += ["except ValueError:"] + _indent(draw(_statements(depth - 1)))
    if kind in ("try_finally", "try_full"):
        lines += ["finally:"] + _indent(draw(_statements(depth - 1)))
    return lines


@st.composite
def async_function_sources(draw: st.DrawFn) -> str:
    body = _indent(draw(_statements(2)))
    header = "async def fn(self, x, items, source, ctx, op):"
    return "\n".join([header] + body) + "\n"


def _build(source: str) -> tuple[ast.AsyncFunctionDef, object]:
    tree = ast.parse(source)
    fn = next(iter_function_defs(tree))
    return fn, build_cfg(fn, coroutine_names=frozenset())


def _cfg_for(source: str, name: str = "fn"):
    tree = ast.parse(textwrap.dedent(source))
    names = module_coroutine_names(tree)
    for fn in iter_function_defs(tree):
        if fn.name == name:
            return build_cfg(fn, coroutine_names=names)
    raise AssertionError(f"no function named {name!r}")


def _stmt_node_at(cfg, line: int):
    for node in cfg.nodes:
        if node.kind == "stmt" and node.line == line:
            return node
    raise AssertionError(f"no stmt node at line {line}")


class TestGeneratedCFGs:
    @settings(max_examples=60, deadline=None)
    @given(source=async_function_sources())
    def test_every_reachable_node_reaches_an_exit(self, source):
        _, cfg = _build(source)
        for index in sorted(cfg.reachable_from(cfg.entry)):
            assert cfg.reaches_exit(index), (
                f"node {index} cannot reach any exit in:\n{source}"
            )

    @settings(max_examples=60, deadline=None)
    @given(source=async_function_sources())
    def test_await_points_match_source_order(self, source):
        fn, cfg = _build(source)
        recorded = [(a.lineno, a.col_offset) for a in cfg.await_points()]
        expected = sorted(
            (node.lineno, node.col_offset)
            for node in ast.walk(fn)
            if isinstance(node, ast.Await)
        )
        assert sorted(recorded) == expected, source
        assert recorded == sorted(recorded), source

    @settings(max_examples=60, deadline=None)
    @given(source=async_function_sources())
    def test_entry_and_exits_are_distinct(self, source):
        _, cfg = _build(source)
        assert len({cfg.entry, cfg.exit, cfg.error}) == 3
        assert cfg.reaches_exit(cfg.entry)


class TestRouting:
    def test_break_threads_through_finally(self):
        cfg = _cfg_for(
            """
            async def fn(self):
                for item in self.items:
                    try:
                        break
                    finally:
                        await self.cleanup()
                await self.done()
            """
        )
        # break routes through the finally (one await) and out of the
        # loop, so the trailing await is still reachable: two awaits.
        assert len(cfg.await_points()) == 2
        for index in sorted(cfg.reachable_from(cfg.entry)):
            assert cfg.reaches_exit(index)

    def test_return_threads_through_finally(self):
        cfg = _cfg_for(
            """
            async def fn(self):
                try:
                    return 1
                finally:
                    await self.cleanup()
            """
        )
        assert len(cfg.await_points()) == 1
        assert cfg.reaches_exit(cfg.entry)

    def test_nested_function_awaits_are_not_attributed(self):
        cfg = _cfg_for(
            """
            async def fn(self):
                async def inner():
                    await helper()
                x = 1
                return x
            """
        )
        assert cfg.await_points() == []
        for node in cfg.nodes:
            assert not node.suspends

    def test_same_module_coroutine_call_suspends(self):
        cfg = _cfg_for(
            """
            async def helper(self):
                return 1

            async def fn(self):
                self.helper()
                plain()
            """
        )
        lines = {
            node.line: node.suspends for node in cfg.nodes if node.kind == "stmt"
        }
        assert lines[6] is True
        assert lines[7] is False

    def test_spawn_wrapped_coroutine_does_not_suspend(self):
        cfg = _cfg_for(
            """
            async def helper(self):
                return 1

            async def fn(self):
                asyncio.create_task(self.helper())
            """
        )
        node = _stmt_node_at(cfg, 6)
        assert node.suspends is False

    def test_lock_guarded_body_is_marked(self):
        cfg = _cfg_for(
            """
            async def fn(self):
                async with self._lock:
                    self.counter = self.counter + 1
                self.other = 1
            """
        )
        assert _stmt_node_at(cfg, 4).guarded is True
        assert _stmt_node_at(cfg, 5).guarded is False

    def test_exception_edges_tag_cancellation_points(self):
        cfg = _cfg_for(
            """
            async def fn(self):
                try:
                    x = 1
                    await self.op()
                except ValueError:
                    pass
            """
        )

        def cancel_flags(line: int) -> list[bool]:
            node = _stmt_node_at(cfg, line)
            return [e.can_cancel for e in node.succ if e.kind == EXCEPTION]

        assert cancel_flags(4) == [False]
        assert cancel_flags(5) == [True]

    def test_else_body_not_covered_by_handlers(self):
        cfg = _cfg_for(
            """
            async def fn(self):
                try:
                    x = 1
                except ValueError:
                    handled = 1
                else:
                    y = 2
            """
        )
        dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
        else_node = _stmt_node_at(cfg, 8)
        assert dispatch.index not in {
            e.dst for e in else_node.succ if e.kind == EXCEPTION
        }

"""The real source tree must be lint-clean — the PR-gate acceptance test."""

from pathlib import Path

import repro
from repro.analysis import LintEngine


def repro_root() -> Path:
    return Path(repro.__file__).resolve().parent


class TestRealTree:
    def test_src_tree_is_clean(self):
        """Zero unsuppressed findings over the shipped package."""
        report = LintEngine().run([repro_root()])
        assert report.files_checked > 50
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"lint findings on src tree:\n{rendered}"

    def test_every_suppression_is_justified(self):
        """R000 already enforces this; double-check the inventory directly."""
        report = LintEngine().run([repro_root()])
        for supp in report.suppressions:
            assert supp.justification.strip(), (
                f"{supp.path}:{supp.line} suppresses {supp.rules} without a reason"
            )

    def test_no_bare_asserts_left_in_src(self):
        """The satellite task: every assert became a real raise."""
        from repro.analysis.rules import AssertIsNotValidation

        report = LintEngine([AssertIsNotValidation()]).run([repro_root()])
        assert report.findings == []
        assert report.suppressed == []

"""Smoke tests: every example script runs end to end.

The examples carry their own assertions (they double as executable
documentation of the paper's claims), so running them is a real test.
The two Monte Carlo-heavy ones are excluded here to keep the suite
fast; the benchmark harness covers their content.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "priority_scheduling.py",
    "pumps_systolic_arrays.py",
    "load_balancing.py",
    "distributed_token_demo.py",
    "fault_tolerance.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_examples_directory_documented():
    readme = (EXAMPLES / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in readme, f"{script.name} missing from examples/README.md"

"""SIM-BLOCK — the paper's headline numbers.

In-text claims:
  * *"the average blocking probability can be as low as 2 percent for
    an MRSIN embedded in an 8x8 cube network"* (optimal scheduling);
  * *"network blockages can be reduced to less than 5 percent"* on an
    Omega;
  * *"If a heuristic routing algorithm is used, then the average
    blocking probability increases to around 20 percent."*

The authors' exact workload is unpublished; we re-run the Monte Carlo
experiment at mixed request/free densities on completely free 8x8
Omega and cube MRSINs, comparing the optimal (max-flow) scheduler
against the address-mapped heuristic.  The reproduction target is the
*shape*: optimal well under 5%, heuristic an order of magnitude worse
(~20%).

Timed kernel: one optimal scheduling cycle at full load.
"""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.networks import cube, omega
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec
from repro.util.tables import Table

TRIALS = 120
# Mixed densities model varying instantaneous load, like a long
# simulation run sampling many cycle states.
DENSITIES = (0.6, 0.8, 1.0)


def measure(builder, policy: str) -> tuple[int, int]:
    blocked = possible = 0
    for i, d in enumerate(DENSITIES):
        spec = WorkloadSpec(builder=builder, n_ports=8,
                            request_density=d, free_density=d)
        est = estimate_blocking(spec, policy, trials=TRIALS, seed=100 + i)
        blocked += est.blocked
        possible += est.possible
    return blocked, possible


@pytest.mark.benchmark(group="sim-block")
def test_blocking_probability_headline(benchmark, capsys):
    table = Table(["network", "policy", "paper", "measured P(block)"],
                  title="SIM-BLOCK: blocking probability, free 8x8 MRSIN")
    results = {}
    for name, builder in (("omega-8", omega), ("cube-8", cube)):
        for policy, paper in (("optimal", "< 5% (~2%)"), ("random_binding", "~20%")):
            blocked, possible = measure(builder, policy)
            p = blocked / possible
            results[(name, policy)] = p
            table.add_row(name, policy, paper, f"{p:.3f}")
    with capsys.disabled():
        print("\n" + table.render())

    # The paper's shape.
    for name in ("omega-8", "cube-8"):
        assert results[(name, "optimal")] < 0.05, results
        assert results[(name, "random_binding")] > 0.10, results
        assert results[(name, "random_binding")] > 4 * max(results[(name, "optimal")], 0.01)

    def kernel():
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        return len(OptimalScheduler().schedule(m))

    assert benchmark(kernel) == 8


@pytest.mark.benchmark(group="sim-block")
def test_blocking_greedy_intermediate(benchmark, capsys):
    """A retrying greedy router sits between blind binding and optimal
    (it still never reroutes committed circuits)."""
    rows = []
    for policy in ("optimal", "greedy", "random_binding"):
        blocked, possible = measure(omega, policy)
        rows.append((policy, blocked / possible))
    table = Table(["policy", "P(block)"], title="SIM-BLOCK: policy ladder, omega-8")
    for policy, p in rows:
        table.add_row(policy, f"{p:.3f}")
    with capsys.disabled():
        print("\n" + table.render())
    ladder = dict(rows)
    assert ladder["optimal"] <= ladder["greedy"] <= ladder["random_binding"] + 1e-9

    spec = WorkloadSpec(builder=omega, n_ports=8)
    def kernel():
        return estimate_blocking(spec, "greedy", trials=5, seed=0).probability

    benchmark(kernel)

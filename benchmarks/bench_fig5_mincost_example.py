"""FIG5 — Transformation 2 on an Omega MRSIN with priorities/preferences.

Paper setup (Fig. 5): an 8x8 Omega with occupied paths; three
processors request with priority levels, five resources are free with
preference values (both scales 1..10); the min-cost flow (solved by
the out-of-kilter algorithm) serves **all three** requests and picks
high-preference resources — the paper's result is the mapping
``{(p3, r5), (p5, r1), (p8, r7)}``.

Our Omega wiring differs from the paper's renumbered figure, so the
specific pairs differ; the reproduced properties are (a) all requests
served, (b) total cost is the LP optimum (cross-checked by three
independent solvers), (c) preferred resources chosen.

Timed kernel: Transformation 2 + out-of-kilter.
"""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.networks import omega
from repro.util.tables import Table

PREFERENCES = [9, 1, 6, 1, 8, 1, 4, 7]


def fig5_instance() -> MRSIN:
    net = omega(8)
    m = MRSIN(net, preferences=PREFERENCES, max_priority=10, max_preference=10)
    for p, r in [(1, 1), (6, 3)]:
        net.establish_circuit(net.find_free_path(p, r))
        m.resources[r].busy = True
    m.submit(Request(2, priority=6))
    m.submit(Request(4, priority=9))
    m.submit(Request(7, priority=2))
    return m


@pytest.mark.benchmark(group="fig5")
def test_fig5_mincost_example(benchmark, capsys):
    # Three independent min-cost solvers must agree on the optimum.
    results = {}
    for algo in ("out_of_kilter", "ssp", "cycle_cancel", "network_simplex"):
        m = fig5_instance()
        sched = OptimalScheduler(mincost=algo)
        mapping = sched.schedule(m)
        results[algo] = (len(mapping), sched.stats.flow_cost, sorted(mapping.pairs))
    sizes = {r[0] for r in results.values()}
    costs = {round(r[1], 6) for r in results.values()}
    assert sizes == {3}, "all three requests must be served (paper's mapping has 3)"
    assert len(costs) == 1, f"solvers disagree on optimal cost: {results}"

    # High-preference resources win: the three served preferences are
    # the three largest reachable ones.
    m = fig5_instance()
    mapping = OptimalScheduler().schedule(m)
    served_prefs = sorted((a.resource.preference for a in mapping), reverse=True)
    free_prefs = sorted((PREFERENCES[r.index] for r in fig5_instance().free_resources()),
                        reverse=True)
    assert served_prefs == free_prefs[:3], (served_prefs, free_prefs)

    table = Table(["quantity", "paper", "measured"], title="FIG5: priority/preference scheduling")
    table.add_row("requests served", "3 of 3", f"{len(mapping)} of 3")
    table.add_row("paper's mapping", "{(p3,r5),(p5,r1),(p8,r7)}", sorted(mapping.pairs))
    table.add_row("min cost (out-of-kilter)", "(optimal)", results["out_of_kilter"][1])
    table.add_row("min cost (SSP)", "(same)", results["ssp"][1])
    table.add_row("min cost (cycle-cancel)", "(same)", results["cycle_cancel"][1])
    table.add_row("min cost (network simplex)", "(same)", results["network_simplex"][1])
    table.add_row("preferences chosen", "highest available", served_prefs)
    with capsys.disabled():
        print("\n" + table.render())

    def kernel():
        return len(OptimalScheduler(mincost="out_of_kilter").schedule(fig5_instance()))

    assert benchmark(kernel) == 3

"""ABLATION — topology independence of the scheduling method.

Paper claim (conclusions): *"The proposed method is independent of the
interconnection structure ... The resource utilization, however, will
depend on the network configuration."*

This bench runs the identical workload distribution over every
topology in the package and reports optimal vs heuristic blocking —
regenerating the promised utilization-depends-on-topology landscape:
the unique-path log-networks cluster together, the redundant-path
networks (Beneš, gamma, Clos, extra-stage) approach the crossbar's
zero.

Timed kernel: one optimal cycle on the gamma network (the 3x3-switch
general-topology case).
"""

import pytest

from repro.core import OptimalScheduler
from repro.networks import (
    baseline,
    benes,
    clos,
    crossbar,
    cube,
    data_manipulator,
    delta,
    extra_stage_omega,
    flip,
    gamma,
    omega,
)
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.tables import Table

TOPOLOGIES = [
    ("omega-8", omega, "unique path"),
    ("flip-8", flip, "unique path"),
    ("cube-8", cube, "unique path"),
    ("delta-8", delta, "unique path"),
    ("baseline-8", baseline, "unique path"),
    ("benes-8", benes, "4 paths/pair"),
    ("gamma-8", gamma, "1-7 paths/pair"),
    ("data-manip-8", data_manipulator, "1-7 paths/pair"),
    ("omega-8+2", lambda n: extra_stage_omega(n, 2), "4 paths/pair"),
    ("clos-4x2x4", lambda n: clos(4, 2, 4), "4 paths/pair"),
    ("crossbar-8", lambda n: crossbar(n, n), "nonblocking"),
]
TRIALS = 80


@pytest.mark.benchmark(group="ablation-topology")
def test_topology_blocking_landscape(benchmark, capsys):
    table = Table(
        ["topology", "redundancy", "optimal P(block)", "heuristic P(block)"],
        title="ABLATION: the same scheduler across topologies (d=0.9)",
    )
    measured = {}
    for name, builder, redundancy in TOPOLOGIES:
        spec = WorkloadSpec(builder=builder, n_ports=8,
                            request_density=0.9, free_density=0.9)
        opt = estimate_blocking(spec, "optimal", trials=TRIALS, seed=21)
        heur = estimate_blocking(spec, "random_binding", trials=TRIALS, seed=21)
        measured[name] = (opt.probability, heur.probability)
        table.add_row(name, redundancy, f"{opt.probability:.3f}", f"{heur.probability:.3f}")
    with capsys.disabled():
        print("\n" + table.render())

    # Topology-independence of the *method*: optimal never loses to the
    # heuristic anywhere.
    for name, (opt_p, heur_p) in measured.items():
        assert opt_p <= heur_p + 1e-9, name
    # Utilization depends on configuration: the crossbar is perfectly
    # nonblocking, the unique-path networks are not (for the heuristic).
    assert measured["crossbar-8"] == (0.0, 0.0)
    assert measured["omega-8"][1] > 0.1
    # Redundant paths help the heuristic dramatically.
    assert measured["benes-8"][1] < measured["omega-8"][1] / 2

    def kernel():
        spec = WorkloadSpec(builder=gamma, n_ports=8)
        m = sample_instance(spec, 2)
        return len(OptimalScheduler().schedule(m))

    benchmark(kernel)

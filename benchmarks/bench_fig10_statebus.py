"""FIG10/TAB1 — the status bus and the global state machine.

Paper claims: seven events suffice to synchronise the distributed
architecture (Table I); the MRSIN walks the Fig. 10 diagram with bus
vectors ``111000x`` (request tokens) → ``111001x`` (RS got token) →
``110100x`` (resource tokens) → ``110110x`` (registration), iterating
until no augmenting path remains, then allocating.

Regenerates: the observed state/bus-vector sequence of a scheduling
cycle.  Timed kernel: one full distributed scheduling cycle.
"""

import pytest

from benchmarks.conftest import random_loaded_mrsin
from repro.distributed import DistributedScheduler, GlobalState
from repro.util.tables import Table

PAPER_VECTORS = {
    GlobalState.REQUEST_PROPAGATION: "111000",
    GlobalState.TOKEN_STOP: "111001",
    GlobalState.RESOURCE_PROPAGATION: "110100",
    GlobalState.PATH_REGISTRATION: "110110",
}


@pytest.mark.benchmark(group="fig10")
def test_fig10_state_machine(benchmark, capsys):
    m = random_loaded_mrsin(seed=1)
    outcome = DistributedScheduler().schedule(m)

    # Every traced vector matches the paper's six significant bits
    # (the 7th, E7, is the paper's "don't care" x).
    for state, bus in zip(outcome.state_trace, outcome.bus_trace):
        expected = PAPER_VECTORS.get(state)
        if expected is not None:
            assert bus[:6] == expected, (state, bus)
    assert outcome.state_trace[-1] is GlobalState.ALLOCATION

    table = Table(["#", "bus (E1..E7)", "state", "paper vector"],
                  title="FIG10/TAB1: one scheduling cycle")
    for i, (state, bus) in enumerate(zip(outcome.state_trace, outcome.bus_trace)):
        table.add_row(i, bus, state.value, (PAPER_VECTORS.get(state, "-") + "x")
                      if state in PAPER_VECTORS else "-")
    with capsys.disabled():
        print("\n" + table.render())
        print(f"iterations: {outcome.iterations}, clock periods: {outcome.clocks}, "
              f"allocations: {len(outcome.mapping)}")

    def kernel():
        inst = random_loaded_mrsin(seed=1)
        return len(DistributedScheduler().schedule(inst).mapping)

    assert benchmark(kernel) == len(outcome.mapping)

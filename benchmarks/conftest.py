"""Shared fixtures and builders for the benchmark harness.

Run with:  pytest benchmarks/ --benchmark-only
Add ``-s`` to see the regenerated paper tables on stdout; every bench
also asserts the paper's qualitative claims, so a plain run acts as a
regression gate for the reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MRSIN, Request
from repro.networks import omega


def fig2_instance() -> MRSIN:
    """The paper's Fig. 2 situation, 0-based on our Omega wiring.

    Two circuits already occupy the network, five processors request,
    five-plus resources are free; the optimal mapping serves all five
    while a blind binding can strand requests.
    """
    net = omega(8)
    m = MRSIN(net)
    for p, r in [(2, 1), (4, 6)]:
        net.establish_circuit(net.find_free_path(p, r))
        m.resources[r].busy = True
    m.resources[3].busy = True  # r2 in the paper is busy; keep 5 free
    for p in (0, 3, 5, 6, 7):
        m.submit(Request(p))
    return m


def random_loaded_mrsin(seed: int, n: int = 8, builder=omega) -> MRSIN:
    """A random partially-loaded instance (circuits + full requests)."""
    rng = np.random.default_rng(seed)
    net = builder(n)
    m = MRSIN(net)
    for _ in range(n // 4):
        p, r = int(rng.integers(0, n)), int(rng.integers(0, n))
        path = net.find_free_path(p, r)
        if path:
            net.establish_circuit(path)
            m.resources[r].busy = True
    for p in range(n):
        if not net.processor_link(p).occupied:
            m.submit(Request(p))
    return m


@pytest.fixture
def fig2():
    return fig2_instance()

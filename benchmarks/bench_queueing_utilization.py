"""QUEUE — system-level payoff: utilization and response time vs load.

The paper's Section II argues the RSIN design choices from task-level
behaviour: blocking wastes resource idle time, so better scheduling
buys utilization and response time (*"The extra delay ... may decrease
the utilization of resources, and hence increase the response time of
the system"*).  The Fig. 10 discussion adds a batching option: waiting
for more requests before entering a scheduling cycle.

Regenerates two system-level curves on the discrete-event model of the
Section II lifecycle:

1. utilization / response vs offered load, optimal vs address-mapped;
2. the batching trade-off (min_batch = 1, 2, 4) at moderate load.

Timed kernel: one short queueing run.
"""

import pytest

from repro.core import MRSIN
from repro.networks import omega
from repro.sim.queueing import simulate_queueing
from repro.util.tables import Table

LOADS = (0.3, 0.6, 0.9)


@pytest.mark.benchmark(group="queueing")
def test_utilization_and_response_vs_load(benchmark, capsys):
    table = Table(
        ["offered load", "policy", "utilization", "mean response", "completed"],
        title="QUEUE: task lifecycle on omega-8 (horizon 600)",
    )
    results = {}
    for rate in LOADS:
        for policy in ("optimal", "random_binding"):
            res = simulate_queueing(
                MRSIN(omega(8)), policy=policy, arrival_rate=rate,
                mean_service=1.0, transmission_time=0.05,
                horizon=600.0, warmup=50.0, seed=13,
            )
            results[(rate, policy)] = res
            table.add_row(f"{rate:.1f}", policy, f"{res.utilization:.3f}",
                          f"{res.mean_response:.2f}", res.completed)
    with capsys.disabled():
        print("\n" + table.render())

    # Utilization tracks offered load for the optimal scheduler...
    for rate in LOADS:
        util = results[(rate, "optimal")].utilization
        assert abs(util - rate) < 0.12, (rate, util)
    # ... response time rises with load ...
    assert (results[(0.9, "optimal")].mean_response
            > results[(0.3, "optimal")].mean_response)
    # ... and the optimal scheduler is never meaningfully worse than
    # blind binding (the queueing loop lets blocked requests retry, so
    # throughput converges at this scale; the instantaneous blocking
    # gap is the SIM-BLOCK experiment's subject).
    heavy_opt = results[(0.9, "optimal")]
    heavy_blind = results[(0.9, "random_binding")]
    assert heavy_opt.completed >= 0.97 * heavy_blind.completed
    assert heavy_opt.mean_response <= heavy_blind.mean_response * 1.1

    def kernel():
        return simulate_queueing(
            MRSIN(omega(8)), arrival_rate=0.6, horizon=100.0, seed=1
        ).completed

    benchmark(kernel)


@pytest.mark.benchmark(group="queueing")
def test_batching_tradeoff(benchmark, capsys):
    """Fig. 10's waiting option: batching amortises scheduling cycles
    at the cost of queueing delay."""
    table = Table(
        ["min batch", "utilization", "mean response", "mean queue"],
        title="QUEUE: scheduling-cycle batching (omega-8, load 0.6)",
    )
    responses = []
    for batch in (1, 2, 4):
        res = simulate_queueing(
            MRSIN(omega(8)), arrival_rate=0.6, mean_service=1.0,
            transmission_time=0.05, horizon=600.0, warmup=50.0,
            min_batch=batch, seed=29,
        )
        responses.append(res.mean_response)
        table.add_row(batch, f"{res.utilization:.3f}",
                      f"{res.mean_response:.2f}", f"{res.mean_queue:.2f}")
    with capsys.disabled():
        print("\n" + table.render())
    # Waiting for a batch can only add latency.
    assert responses[-1] >= responses[0] - 0.02, responses

    def kernel():
        return simulate_queueing(
            MRSIN(omega(8)), arrival_rate=0.6, horizon=100.0,
            min_batch=4, seed=2,
        ).completed

    benchmark(kernel)

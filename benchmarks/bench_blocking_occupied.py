"""SIM-OCCUPIED — blocking when the network is not completely free.

Paper claim: *"If the network is not completely free, then there will
be fewer paths available for resource allocation.  In this case, a
heuristic routing algorithm may have poor performance.  An optimal
scheduling algorithm will be able to better utilize these paths, and
result in a low blocking probability (although it will be higher than
that of the case when the network is completely free)."*

Regenerates: blocking vs number of pre-established circuits for both
policies.  Expected shape: both curves rise with occupancy; optimal
stays far below heuristic at every point.

Timed kernel: one optimal cycle at the heaviest occupancy.
"""

import pytest

from repro.core import OptimalScheduler
from repro.networks import omega
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.tables import Table

OCCUPANCIES = (0, 1, 2, 3)
TRIALS = 120


@pytest.mark.benchmark(group="sim-occupied")
def test_blocking_vs_occupancy(benchmark, capsys):
    curves: dict[str, list[float]] = {"optimal": [], "random_binding": []}
    table = Table(["pre-established circuits", "optimal P(block)", "heuristic P(block)"],
                  title="SIM-OCCUPIED: blocking vs prior occupancy (omega-8, d=0.8)")
    for k in OCCUPANCIES:
        spec = WorkloadSpec(builder=omega, n_ports=8, request_density=0.8,
                            free_density=1.0, occupied_circuits=k)
        row = [k]
        for policy in ("optimal", "random_binding"):
            est = estimate_blocking(spec, policy, trials=TRIALS, seed=11 * (k + 1))
            curves[policy].append(est.probability)
            row.append(f"{est.probability:.3f}")
        table.add_row(*row)
    with capsys.disabled():
        print("\n" + table.render())

    # Shape assertions: optimal rises with occupancy but stays far
    # below the heuristic at every sweep point.
    assert curves["optimal"][-1] >= curves["optimal"][0]
    assert curves["random_binding"][-1] > curves["random_binding"][0]
    for opt, heur in zip(curves["optimal"], curves["random_binding"]):
        assert opt < heur
    assert curves["optimal"][-1] < 0.15, "optimal must stay low even when loaded"

    spec = WorkloadSpec(builder=omega, n_ports=8, request_density=0.8,
                        occupied_circuits=OCCUPANCIES[-1])

    def kernel():
        m = sample_instance(spec, 3)
        return len(OptimalScheduler().schedule(m))

    benchmark(kernel)

"""WIRE — throughput vs tail latency over real localhost TCP.

The wire layer's claim: putting the batched allocation service behind
an actual socket keeps the paper's allocation discipline intact while
exposing an operational frontier — offered load vs p50/p99/p999
acquire latency.  An **open-loop** seeded generator offers each load
point (closed-loop drivers adapt to the server and hide the tail), so
the measured percentiles are honest queueing delay: flat and
tick-dominated while the network has headroom, growing as offered
load approaches the topology's service capacity.

Sweeps three offered loads across three 16-port topologies (omega,
benes, clos) and records the frontier in ``BENCH_wire.json``.  Every
run is a real TCP client/server pair in one event loop with a seeded
Poisson arrival schedule — byte-identical traffic per (load, seed).

Timed kernel: one short open-loop run against omega-16.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any, Callable

import pytest

from repro.core import MRSIN
from repro.networks import benes, clos, omega
from repro.networks.topology import MultistageNetwork
from repro.service.server import AllocationService, ServiceConfig
from repro.util.tables import Table
from repro.wire import WireServer
from repro.wire.loadgen import LoadGenConfig, run_loadgen

#: Aggregate offered loads, requests/second: comfortable, busy, saturating.
LOADS = (200.0, 600.0, 1200.0)
PORTS = 16
DURATION = 1.0
SEED = 17
TICK = 0.005
MEAN_HOLD = 0.01

TOPOLOGIES: dict[str, Callable[[], MultistageNetwork]] = {
    "omega-16": lambda: omega(PORTS),
    "benes-16": lambda: benes(PORTS),
    "clos-16": lambda: clos(PORTS // 2, 2, PORTS // 2),
}

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_wire.json"


def _one_point(build: Callable[[], MultistageNetwork], rate: float) -> dict[str, Any]:
    """One (topology, offered load) run over real TCP; returns the report."""

    async def scenario() -> dict[str, Any]:
        service = AllocationService(
            MRSIN(build()),
            config=ServiceConfig(
                tick_interval=TICK, queue_limit=512, default_timeout=2.0
            ),
        )
        config = LoadGenConfig(
            rate=rate,
            duration=DURATION,
            processors=PORTS,
            arrival="poisson",
            connections=4,
            seed=SEED,
            request_timeout=2.0,
            mean_hold=MEAN_HOLD,
        )
        async with service:
            async with WireServer(service, max_connections=8) as server:
                host, port = server.address
                report = await run_loadgen(host, port, config)
                wire = server.snapshot()
        point = report.to_json()
        point["wire_protocol_errors"] = wire["protocol_errors"]
        point["leases_granted"] = wire["leases_granted"]
        point["active_leases_after"] = service.active_leases
        return point

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="wire")
def test_wire_throughput_tail_frontier(benchmark, capsys):
    results: dict[str, dict[str, dict[str, Any]]] = {}
    for name, build in TOPOLOGIES.items():
        results[name] = {
            f"rate={rate:g}": _one_point(build, rate) for rate in LOADS
        }

    table = Table(
        ["topology", "offered/s", "completed", "rej", "t/o",
         "thru/s", "p50 ms", "p99 ms", "p999 ms"],
        title=(
            f"WIRE: open-loop offered load vs tail latency "
            f"(16 ports, {DURATION:g}s, tick {TICK:g}s, TCP loopback)"
        ),
    )
    for name, by_rate in results.items():
        for label, point in by_rate.items():
            latency = point["latency_ms"]
            table.add_row(
                name, label.removeprefix("rate="), point["completed"],
                point["rejected"], point["timed_out"],
                f"{point['throughput_per_sec']:.0f}",
                f"{latency['p50']:.2f}", f"{latency['p99']:.2f}",
                f"{latency['p999']:.2f}",
            )
    with capsys.disabled():
        print("\n" + table.render())

    BASELINE_PATH.write_text(json.dumps({
        "benchmark": "bench_wire",
        "transport": "tcp-loopback",
        "ports": PORTS,
        "duration": DURATION,
        "tick_interval": TICK,
        "mean_hold": MEAN_HOLD,
        "seed": SEED,
        "arrival": "poisson",
        "loads": list(LOADS),
        "topologies": results,
    }, indent=2) + "\n")

    for name, by_rate in results.items():
        for label, point in by_rate.items():
            where = f"{name} {label}"
            # The wire itself must be clean at every load point.
            assert point["wire_protocol_errors"] == 0, where
            assert point["errors"] == 0, where
            assert point["active_leases_after"] == 0, where
            assert point["completed"] > 0, where
            assert (
                point["completed"] + point["rejected"] + point["timed_out"]
                == point["offered"]
            ), where
            latency = point["latency_ms"]
            assert latency["p50"] <= latency["p99"] <= latency["p999"], where
        # More offered load means more completed work until saturation:
        # the middle point must clearly out-complete the comfortable one.
        low = by_rate[f"rate={LOADS[0]:g}"]["completed"]
        mid = by_rate[f"rate={LOADS[1]:g}"]["completed"]
        assert mid > 1.5 * low, name

    def kernel():
        return _one_point(TOPOLOGIES["omega-16"], LOADS[0])["completed"]

    benchmark(kernel)

"""HET-BLOCK — blocking with typed resource pools (Section III-D payoff).

Extension experiment: the paper proves the heterogeneous discipline
optimal but reports no blocking numbers for it.  We measure typed
workloads (two resource types interleaved on an 8x8 Omega) under the
multicommodity-LP scheduler vs the typed address-mapped heuristic.
Typed pools make blocking *harder* (each request has half the
candidate resources), so the optimal/heuristic gap is at least as
dramatic as in the homogeneous SIM-BLOCK.

Timed kernel: one heterogeneous scheduling cycle (Simplex solve).
"""

import pytest

from repro.core import OptimalScheduler
from repro.networks import omega
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.tables import Table

TRIALS = 40


def spec(density: float) -> WorkloadSpec:
    return WorkloadSpec(
        builder=omega, n_ports=8,
        request_density=density, free_density=density,
        resource_types=["fft", "conv"],
    )


@pytest.mark.benchmark(group="het-block")
def test_heterogeneous_blocking(benchmark, capsys):
    table = Table(
        ["density", "optimal (multicommodity) P(block)", "heuristic P(block)"],
        title="HET-BLOCK: typed pools on omega-8 (2 types interleaved)",
    )
    gaps = []
    for d in (0.6, 0.9):
        opt = estimate_blocking(spec(d), "optimal", trials=TRIALS, seed=3)
        heur = estimate_blocking(spec(d), "random_binding", trials=TRIALS, seed=3)
        gaps.append((opt.probability, heur.probability))
        table.add_row(f"{d:.1f}", f"{opt.probability:.3f}", f"{heur.probability:.3f}")
    with capsys.disabled():
        print("\n" + table.render())

    for opt_p, heur_p in gaps:
        assert opt_p < 0.05, gaps
        assert heur_p > 2 * max(opt_p, 0.02), gaps

    def kernel():
        m = sample_instance(spec(0.9), 7)
        return len(OptimalScheduler().schedule(m))

    benchmark(kernel)

"""ABLATION — choice of max-flow algorithm inside the scheduler.

DESIGN.md calls out the solver as a pluggable design choice: the paper
names Ford–Fulkerson and realises Dinic in hardware; we additionally
carry Edmonds–Karp (BFS) and push–relabel.  All four must find the
same optimum (flow value is unique); this bench measures what the
choice costs in time and in abstract operations on identical
full-load MRSIN workloads.

Timed kernels: one scheduling cycle per algorithm (one group).
"""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.transform import transformation1
from repro.flows import dinic, edmonds_karp, ford_fulkerson, push_relabel
from repro.networks import omega
from repro.util.counters import OpCounter
from repro.util.tables import Table

ALGORITHMS = {
    "dinic": dinic,
    "edmonds_karp": edmonds_karp,
    "ford_fulkerson": ford_fulkerson,
    "push_relabel": push_relabel,
}
N = 32


def full_load(n: int = N) -> MRSIN:
    m = MRSIN(omega(n))
    for p in range(n):
        m.submit(Request(p))
    return m


@pytest.mark.benchmark(group="ablation-maxflow")
@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_maxflow_algorithm_ablation(benchmark, capsys, name):
    problem = transformation1(full_load())
    counter = OpCounter()
    result = ALGORITHMS[name](problem.net, "s", "t", counter=counter)
    assert result.value == N, "every algorithm must find the same optimum"

    table = Table(["algorithm", "flow", "ops (total)", "notes"],
                  title=f"ABLATION maxflow: {name} on omega-{N} full load")
    notes = {
        "dinic": "paper's hardware algorithm",
        "edmonds_karp": "shortest augmenting paths",
        "ford_fulkerson": "paper's named primal-dual scheme",
        "push_relabel": "post-paper comparison point",
    }
    table.add_row(name, int(result.value), int(counter.total()), notes[name])
    with capsys.disabled():
        print("\n" + table.render())

    def kernel():
        p = transformation1(full_load())
        return ALGORITHMS[name](p.net, "s", "t").value

    assert benchmark(kernel) == N

"""COMPLEX — empirical scaling of Dinic on unit-capacity MRSIN networks.

Paper claim (Section III-B): on general networks Dinic is
``O(|E|^3)``-bounded [sic: ``O(|V|^2 |E|)`` in Dinic's paper]; *"In
our case, the links have unit capacity, and the time complexity is
reduced to O(|V|^{2/3} |E|)"* (Even–Tarjan).

Regenerates: operation counts (arc scans) of Dinic on transformed
Omega MRSINs of growing size, against the ``|V|^{2/3} |E|`` envelope.
For an N-port Omega, ``|V| = Θ(N log N)`` and ``|E| = Θ(N log N)``,
so the bound predicts growth ≈ ``(N log N)^{5/3}``; the measured
fitted exponent must not exceed it (in practice it is far smaller —
the bound is a worst case).

Timed kernels: one full max-flow per network size (one benchmark entry
per N, same group, so the report shows the scaling).
"""

import math

import pytest

from repro.core import MRSIN, Request
from repro.core.transform import transformation1
from repro.flows.dinic import dinic
from repro.networks import omega
from repro.util.counters import OpCounter
from repro.util.tables import Table

SIZES = (8, 16, 32, 64, 128)


def full_load_problem(n: int):
    m = MRSIN(omega(n))
    for p in range(n):
        m.submit(Request(p))
    return transformation1(m)


def measured_ops(n: int) -> tuple[int, int, int]:
    problem = full_load_problem(n)
    counter = OpCounter()
    result = dinic(problem.net, "s", "t", counter=counter)
    assert result.value == n
    return counter["arc_scan"], problem.net.n_nodes, problem.net.n_arcs


@pytest.mark.benchmark(group="scaling-dinic")
def test_dinic_scaling_report(benchmark, capsys):
    rows = [measured_ops(n) for n in SIZES]
    table = Table(["N", "|V|", "|E|", "arc scans", "bound |V|^(2/3)|E|", "scans/bound"],
                  title="COMPLEX: Dinic on unit-capacity MRSIN flow networks")
    ratios = []
    for n, (ops, nv, ne) in zip(SIZES, rows):
        bound = nv ** (2 / 3) * ne
        ratios.append(ops / bound)
        table.add_row(n, nv, ne, ops, f"{bound:.0f}", f"{ops / bound:.3f}")
    with capsys.disabled():
        print("\n" + table.render())
        # Fitted growth exponent in |E| between first and last point.
        e0, e1 = rows[0][2], rows[-1][2]
        o0, o1 = rows[0][0], rows[-1][0]
        exponent = math.log(o1 / o0) / math.log(e1 / e0)
        print(f"fitted exponent (ops vs |E|): {exponent:.2f} "
              f"(Even–Tarjan bound allows 5/3 ≈ 1.67 in |E| with |V| = Θ(|E|))")

    # The bound must never be exceeded, and the ratio must not grow —
    # i.e., the measured complexity is within O(|V|^{2/3}|E|).
    for r in ratios:
        assert r < 1.0, f"operations exceeded the Even–Tarjan envelope: {ratios}"
    assert ratios[-1] <= ratios[0] * 1.5, f"ratio growing: {ratios}"

    def kernel():
        problem = full_load_problem(64)
        return dinic(problem.net, "s", "t").value

    assert benchmark(kernel) == 64


@pytest.mark.benchmark(group="scaling-dinic")
@pytest.mark.parametrize("n", SIZES)
def test_dinic_maxflow_time(benchmark, n):
    """Wall-clock per network size (one group row per N)."""
    def kernel():
        problem = full_load_problem(n)
        return dinic(problem.net, "s", "t").value

    assert benchmark(kernel) == n

"""FIG2 — the paper's Fig. 2: optimal scheduling on a loaded 8x8 Omega.

Paper claim: with two circuits occupied and five pending requests, an
optimal mapping allocates **all five** free resources, while a bad
(blindly bound) mapping strands a request whose unique path is
blocked.  The flow network of Fig. 2(b) has unit capacities and its
max flow equals the allocation count (Theorem 2).

Regenerates: the optimal mapping, the max-flow value, and the
bad-mapping comparison.  Timed kernel: Transformation 1 + Dinic on the
Fig. 2 instance.
"""

import pytest

from benchmarks.conftest import fig2_instance
from repro.core import OptimalScheduler, random_binding_schedule
from repro.core.transform import extract_mapping, transformation1
from repro.flows.dinic import dinic
from repro.util.tables import Table


@pytest.mark.benchmark(group="fig2")
def test_fig2_omega_example(benchmark, capsys):
    # --- regenerate the figure's numbers --------------------------------
    m = fig2_instance()
    problem = transformation1(m)
    result = dinic(problem.net, "s", "t")
    mapping = extract_mapping(problem, m)

    assert result.value == 5, "optimal mapping must allocate all five resources"
    assert len(mapping) == 5
    mapping.validate(m)

    # A blind address-mapped binding allocates fewer on at least some
    # bindings (the paper's {(p1,r1),...} bad-mapping case).
    worst = min(
        len(random_binding_schedule(fig2_instance(), rng=seed)) for seed in range(20)
    )
    assert worst < 5, "some blind binding must block (Fig. 2's bad mapping)"

    table = Table(["quantity", "paper", "measured"], title="FIG2: 8x8 Omega example")
    table.add_row("requests / free resources", "5 / 5", f"{5} / {len(m.free_resources())}")
    table.add_row("max flow = optimal allocations", 5, int(result.value))
    table.add_row("worst blind-binding allocations", 4, worst)
    table.add_row("an optimal mapping", "{(p1,r3),(p3,r5),...}", sorted(mapping.pairs))
    with capsys.disabled():
        print("\n" + table.render())

    # --- timed kernel ----------------------------------------------------
    def cycle():
        inst = fig2_instance()
        return OptimalScheduler().schedule(inst)

    assert len(benchmark(cycle)) == 5

"""TAB2 — the paper's Table II: one row per scheduling discipline.

==============================  ===========================  ==================
Discipline                      Equivalent flow problem       Algorithm
==============================  ===========================  ==================
Homogeneous, no priority        Max flow                      Ford-Fulkerson/Dinic
Homogeneous, priority & pref.   Min-cost flow                 Out-of-kilter
Heterogeneous, restricted       Real multicommodity (LP)      Simplex
Heterogeneous, general          Integer multicommodity        NP-hard (B&B)
==============================  ===========================  ==================

Regenerates the table by *running* each row on a matched 8x8 Omega
workload and reporting which solver handled it, the allocations, and
the solve characteristics.  Timed kernels: one scheduling cycle per
discipline (four benchmark entries in one group).
"""

import pytest

from repro.core import MRSIN, Discipline, OptimalScheduler, Request
from repro.core.transform import heterogeneous_max_problem
from repro.flows.multicommodity import solve_max_multicommodity
from repro.networks import omega
from repro.util.tables import Table


def instance(discipline: Discipline) -> MRSIN:
    """A matched workload for each Table II row: 6 requests, 8x8 Omega."""
    if discipline in (Discipline.HETEROGENEOUS, Discipline.HETEROGENEOUS_PRIORITY):
        types = ["fft", "conv"] * 4
        m = MRSIN(omega(8), resource_types=types,
                  preferences=[1] * 8 if discipline is Discipline.HETEROGENEOUS else [3, 1] * 4)
        for p in range(6):
            m.submit(Request(
                p,
                resource_type=types[p % 2],
                priority=1 if discipline is Discipline.HETEROGENEOUS else 1 + p,
            ))
    else:
        m = MRSIN(omega(8),
                  preferences=[1] * 8 if discipline is Discipline.HOMOGENEOUS else [2, 5] * 4)
        for p in range(6):
            m.submit(Request(
                p, priority=1 if discipline is Discipline.HOMOGENEOUS else 1 + p
            ))
    return m


ROWS = [
    (Discipline.HOMOGENEOUS, "max flow", "Dinic / Ford-Fulkerson"),
    (Discipline.PRIORITY, "min-cost flow", "out-of-kilter"),
    (Discipline.HETEROGENEOUS, "real multicommodity LP", "Simplex"),
    (Discipline.HETEROGENEOUS_PRIORITY, "integer multicommodity", "Simplex (+B&B)"),
]


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("discipline,flow_problem,algorithm", ROWS,
                         ids=[r[0].value for r in ROWS])
def test_table2_discipline(benchmark, capsys, discipline, flow_problem, algorithm):
    m = instance(discipline)
    sched = OptimalScheduler()
    detected = sched.classify(m)
    assert detected is discipline, f"auto-dispatch failed: {detected} != {discipline}"
    mapping = sched.schedule(m)
    assert len(mapping) == 6, "all six requests fit on the free Omega"
    mapping.validate(m)

    table = Table(["discipline", "flow problem", "algorithm", "allocated", "cost"],
                  title=f"TAB2 row: {discipline.value}")
    table.add_row(discipline.value, flow_problem, algorithm,
                  f"{len(mapping)}/6", sched.stats.flow_cost)
    with capsys.disabled():
        print("\n" + table.render())

    def kernel():
        return len(OptimalScheduler().schedule(instance(discipline)))

    assert benchmark(kernel) == 6


@pytest.mark.benchmark(group="table2")
def test_table2_restricted_topology_integrality(benchmark, capsys):
    """The Evans–Jarvis claim behind row 3: on the stage-structured
    (restricted) topology the bare LP optimum is already integral —
    no branch and bound needed."""
    integral = 0
    trials = 10
    for seed in range(trials):
        m = instance(Discipline.HETEROGENEOUS)
        problem, _ = heterogeneous_max_problem(m)
        res = solve_max_multicommodity(problem)
        integral += res.integral
    assert integral == trials, "LP relaxation must be integral on MRSIN topologies"
    with capsys.disabled():
        print(f"\nTAB2: LP integrality on restricted topology: {integral}/{trials} integral")

    def kernel():
        problem, _ = heterogeneous_max_problem(instance(Discipline.HETEROGENEOUS))
        return solve_max_multicommodity(problem).integral

    assert benchmark(kernel)

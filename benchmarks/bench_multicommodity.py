"""MULTI — multicommodity scheduling and Simplex behaviour.

Paper claims (Section III-D):
  * heterogeneous MRSINs reduce to multicommodity flow; on restricted
    (Evans–Jarvis) topologies *"the optimal flow values are always
    integral"*, solvable by the Simplex method;
  * Simplex *"has been shown empirically to be a linear time
    algorithm"* (McCall) — pivot counts grow roughly linearly in
    problem size, not combinatorially;
  * the general integral problem is NP-hard (handled by B&B).

Regenerates: integrality rate and pivot counts vs network size, plus a
non-MRSIN triangle instance where the LP relaxation is genuinely
fractional and branch-and-bound is required.

Timed kernel: one heterogeneous scheduling cycle (Simplex solve).
"""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.transform import heterogeneous_max_problem
from repro.flows.graph import FlowNetwork
from repro.flows.multicommodity import (
    Commodity,
    MultiCommodityProblem,
    solve_integral_multicommodity,
    solve_max_multicommodity,
)
from repro.networks import omega
from repro.util.tables import Table

SIZES = (4, 8, 16)


def hetero_instance(n: int) -> MRSIN:
    types = ["fft", "conv"] * (n // 2)
    m = MRSIN(omega(n), resource_types=types)
    for p in range(n):
        m.submit(Request(p, resource_type=types[p % 2]))
    return m


@pytest.mark.benchmark(group="multi")
def test_multicommodity_report(benchmark, capsys):
    table = Table(
        ["N", "LP variables", "constraints", "pivots", "pivots/variable", "integral"],
        title="MULTI: multicommodity LP on heterogeneous Omega MRSINs",
    )
    densities = []
    for n in SIZES:
        problem, _ = heterogeneous_max_problem(hetero_instance(n))
        n_vars = 2 * problem.net.n_arcs + 2
        n_cons = 2 * problem.net.n_nodes + problem.net.n_arcs
        res = solve_max_multicommodity(problem)
        assert res.integral, "restricted topology must give integral LP optimum"
        densities.append(res.iterations / n_vars)
        table.add_row(n, n_vars, n_cons, res.iterations,
                      f"{res.iterations / n_vars:.2f}", res.integral)
    with capsys.disabled():
        print("\n" + table.render())
        print("(McCall's empirical-linearity claim: pivots/variable stays O(1))")

    # Pivot count per variable must stay bounded (no combinatorial blowup).
    assert max(densities) < 4 * max(densities[0], 0.5), densities

    def kernel():
        return len(OptimalScheduler().schedule(hetero_instance(8)))

    assert benchmark(kernel) == 8


@pytest.mark.benchmark(group="multi")
def test_fractional_general_topology(benchmark, capsys):
    """The NP-hard side: on the 3-commodity unit triangle the LP
    optimum is fractional (4.5) and exceeds the integral optimum (4)
    — branch and bound closes the gap."""
    def triangle() -> MultiCommodityProblem:
        net = FlowNetwork()
        for u, v in (("a", "b"), ("b", "c"), ("c", "a")):
            net.add_arc(u, v, 1)
            net.add_arc(v, u, 1)
        coms = [Commodity(0, "a", "b"), Commodity(1, "b", "c"), Commodity(2, "c", "a")]
        return MultiCommodityProblem(net, coms)

    lp = solve_max_multicommodity(triangle())
    integral = solve_integral_multicommodity(triangle())
    assert integral.integral
    assert integral.total_flow < lp.total_flow + 1e-9
    assert integral.total_flow == pytest.approx(round(integral.total_flow))
    with capsys.disabled():
        print(f"\nMULTI: triangle LP optimum {lp.total_flow:.2f} "
              f"(fractional: {not lp.integral}), "
              f"integral optimum {integral.total_flow:.0f} "
              f"after {integral.nodes_explored} B&B nodes")

    def kernel():
        return solve_integral_multicommodity(triangle()).total_flow

    benchmark(kernel)

"""SERVICE — online batched allocation vs one-request-per-solve.

The service layer's claim: coalescing every pending request into one
max-flow solve per tick (Transformation 1 over the whole batch)
amortises the monitor's per-cycle cost, so under sustained load the
batched service sustains a strictly higher allocation throughput than
solving one request at a time (``max_batch=1``), while also spending
far fewer solver instructions per allocation.

Regenerates a two-load-point comparison (moderate and heavy traffic)
and records the first perf baseline in ``BENCH_service.json``
(allocations/sec wall-clock and mean queue wait per mode) so later
PRs have a trajectory to compare against.

Timed kernel: one short batched service run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.networks import omega
from repro.service.driver import run_service
from repro.sim.workload import WorkloadSpec
from repro.util.tables import Table

LOADS = (0.5, 1.5)  # arrival rate per processor: moderate, heavy
HORIZON = 150.0
SEED = 11
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _spec() -> WorkloadSpec:
    return WorkloadSpec(builder=omega, n_ports=8)


def _run(rate: float, max_batch: int | None) -> dict:
    t0 = time.perf_counter()
    result = run_service(
        _spec(),
        rate=rate,
        horizon=HORIZON,
        seed=SEED,
        max_batch=max_batch,
        queue_limit=128,
        request_timeout=32.0,
    )
    elapsed = time.perf_counter() - t0
    snap = result.snapshot
    return {
        "allocated": snap["allocated"],
        "timed_out": snap["timed_out"],
        "mean_wait": snap["mean_wait"],
        "mean_batch": snap["mean_batch"],
        "solver_instructions": snap["solver_instructions"],
        "instructions_per_allocation": (
            snap["solver_instructions"] / snap["allocated"] if snap["allocated"] else 0.0
        ),
        "elapsed_sec": elapsed,
        "allocations_per_sec": snap["allocated"] / elapsed if elapsed > 0 else 0.0,
    }


@pytest.mark.benchmark(group="service")
def test_batched_vs_serial_throughput(benchmark, capsys):
    results = {
        (rate, mode): _run(rate, max_batch)
        for rate in LOADS
        for mode, max_batch in (("batched", None), ("serial", 1))
    }

    table = Table(
        ["rate/proc", "mode", "allocated", "timed out", "mean wait",
         "instr/alloc", "allocs/sec (wall)"],
        title=f"SERVICE: batched vs one-request-per-solve (omega-8, horizon {HORIZON:g})",
    )
    for (rate, mode), r in results.items():
        table.add_row(
            f"{rate:g}", mode, r["allocated"], r["timed_out"],
            f"{r['mean_wait']:.2f}", f"{r['instructions_per_allocation']:.0f}",
            f"{r['allocations_per_sec']:.0f}",
        )
    with capsys.disabled():
        print("\n" + table.render())

    # Record the perf baseline for later PRs.
    baseline = {
        "benchmark": "bench_service_throughput",
        "network": "omega-8",
        "horizon": HORIZON,
        "seed": SEED,
        "loads": {
            f"rate={rate:g}": {
                mode: {
                    "allocations_per_sec": results[(rate, mode)]["allocations_per_sec"],
                    "mean_wait": results[(rate, mode)]["mean_wait"],
                    "allocated": results[(rate, mode)]["allocated"],
                    "instructions_per_allocation": results[(rate, mode)][
                        "instructions_per_allocation"
                    ],
                }
                for mode in ("batched", "serial")
            }
            for rate in LOADS
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")

    heavy_batched = results[(1.5, "batched")]
    heavy_serial = results[(1.5, "serial")]
    # At heavy load the batched service strictly beats one-per-solve:
    # more allocations inside the horizon, more per wall-clock second,
    # and fewer solver instructions per allocation (the amortisation).
    assert heavy_batched["allocated"] > heavy_serial["allocated"]
    assert heavy_batched["allocations_per_sec"] > heavy_serial["allocations_per_sec"]
    assert (
        heavy_batched["instructions_per_allocation"]
        < heavy_serial["instructions_per_allocation"]
    )
    # At moderate load batching never hurts allocation count.
    assert results[(0.5, "batched")]["allocated"] >= results[(0.5, "serial")]["allocated"]

    def kernel():
        return run_service(_spec(), rate=0.8, horizon=30.0, seed=3).allocated

    benchmark(kernel)

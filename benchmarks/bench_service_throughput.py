"""SERVICE — online batched allocation vs one-request-per-solve,
and warm-start (kernel / object engine) vs cold per-tick scheduling.

The service layer's claim: coalescing every pending request into one
max-flow solve per tick (Transformation 1 over the whole batch)
amortises the monitor's per-cycle cost, so under sustained load the
batched service sustains a strictly higher allocation throughput than
solving one request at a time (``max_batch=1``).  At *moderate* load it
also spends fewer solver instructions per allocation; at saturating
load that per-allocation comparison stops being meaningful (the serial
service starves its queue, and the kernel's value-bound certificate
makes each trivial one-request solve nearly free), so there the asserts
pin the starvation contrast instead.

The warm-engine claims: keeping one persistent Transformation-1 network
across ticks (releases retract their flow, solves augment from the
standing flow) beats rebuilding from scratch every cycle, and hosting
that persistent network on the flat-array CSR kernel
(:class:`~repro.core.incremental.KernelFlowEngine`) beats walking the
object graph (:class:`~repro.core.incremental.IncrementalFlowEngine`).
The steady-state section drives ``run_one_cycle`` directly under
sustained churn on an omega-32 and times only the scheduling cycle for
all three engines — identical allocation counts, warm-kernel ≥1.5× the
cold ticks/sec, and warm-kernel strictly above warm-object.

Regenerates a two-load-point comparison (moderate and heavy traffic)
plus the three steady-state rates, recorded in ``BENCH_service.json``
so later PRs have a trajectory to compare against.

Timed kernel: one short batched service run.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MRSIN, Request
from repro.networks import omega
from repro.service.clock import VirtualClock
from repro.service.driver import run_service
from repro.service.server import AllocationService, ServiceConfig
from repro.sim.workload import WorkloadSpec
from repro.util.tables import Table

LOADS = (0.5, 1.5)  # arrival rate per processor: moderate, heavy
HORIZON = 150.0
SEED = 11
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

# Steady-state warm-vs-cold measurement (high load, direct tick drive).
STEADY_PORTS = 32
STEADY_TICKS = 240
STEADY_WARMUP = 8  # ticks excluded from timing (includes the cold build)
STEADY_HOLD = 3  # ticks a lease is held before release
STEADY_SPEEDUP = 1.5


def _spec() -> WorkloadSpec:
    return WorkloadSpec(builder=omega, n_ports=8)


def _run(rate: float, max_batch: int | None) -> dict:
    t0 = time.perf_counter()
    result = run_service(
        _spec(),
        rate=rate,
        horizon=HORIZON,
        seed=SEED,
        max_batch=max_batch,
        queue_limit=128,
        request_timeout=32.0,
    )
    elapsed = time.perf_counter() - t0
    snap = result.snapshot
    return {
        "allocated": snap["allocated"],
        "timed_out": snap["timed_out"],
        "mean_wait": snap["mean_wait"],
        "mean_batch": snap["mean_batch"],
        "solver_instructions": snap["solver_instructions"],
        "instructions_per_allocation": (
            snap["solver_instructions"] / snap["allocated"] if snap["allocated"] else 0.0
        ),
        "elapsed_sec": elapsed,
        "allocations_per_sec": snap["allocated"] / elapsed if elapsed > 0 else 0.0,
    }


def _steady_state(mode: str) -> dict:
    """Sustained-churn tick rate with timing confined to the cycle.

    ``mode`` is ``"cold"`` (per-tick rebuild), ``"object"`` (warm
    object-graph engine), or ``"kernel"`` (warm flat-array engine).
    Every tick: leases older than ``STEADY_HOLD`` ticks are released,
    every idle processor re-requests with probability 0.9, and one
    scheduling cycle runs.  Only ``run_one_cycle`` is timed (after the
    warm-up), so the rate isolates scheduling cost — the asyncio
    plumbing around it is identical in all configurations.
    """

    async def scenario() -> dict:
        mrsin = MRSIN(omega(STEADY_PORTS))
        config = ServiceConfig(
            queue_limit=4 * STEADY_PORTS,
            warm_start=mode != "cold",
            warm_engine=mode if mode != "cold" else "kernel",
        )
        service = AllocationService(mrsin, config=config, clock=VirtualClock())
        rng = np.random.default_rng(SEED)
        held: list[tuple[int, object]] = []
        holding: set[int] = set()
        tasks: list[asyncio.Task] = []
        solve_time = 0.0
        timed_ticks = 0
        allocated = 0
        for tick in range(STEADY_TICKS):
            while held and held[0][0] <= tick:
                _, lease = held.pop(0)
                service.release(lease)
                holding.discard(lease.request.processor)
            for p in range(STEADY_PORTS):
                if p not in holding and rng.random() < 0.9:
                    tasks.append(asyncio.ensure_future(service.acquire(Request(p))))
            for _ in range(2):
                await asyncio.sleep(0)
            t0 = time.perf_counter()
            leases = service.run_one_cycle()
            elapsed = time.perf_counter() - t0
            if tick >= STEADY_WARMUP:
                solve_time += elapsed
                timed_ticks += 1
            allocated += len(leases)
            for lease in leases:
                held.append((tick + STEADY_HOLD, lease))
                holding.add(lease.request.processor)
        for task in tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        snap = service.snapshot()
        return {
            "ticks_per_sec": timed_ticks / solve_time,
            "allocated": allocated,
            "engine_builds": snap.get("engine_builds"),
        }

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="service")
def test_batched_vs_serial_throughput(benchmark, capsys):
    results = {
        (rate, mode): _run(rate, max_batch)
        for rate in LOADS
        for mode, max_batch in (("batched", None), ("serial", 1))
    }

    table = Table(
        ["rate/proc", "mode", "allocated", "timed out", "mean wait",
         "instr/alloc", "allocs/sec (wall)"],
        title=f"SERVICE: batched vs one-request-per-solve (omega-8, horizon {HORIZON:g})",
    )
    for (rate, mode), r in results.items():
        table.add_row(
            f"{rate:g}", mode, r["allocated"], r["timed_out"],
            f"{r['mean_wait']:.2f}", f"{r['instructions_per_allocation']:.0f}",
            f"{r['allocations_per_sec']:.0f}",
        )
    with capsys.disabled():
        print("\n" + table.render())

    # Warm-start (kernel and object engines) vs cold per-tick
    # scheduling at high sustained load.
    kernel_warm = _steady_state("kernel")
    object_warm = _steady_state("object")
    cold = _steady_state("cold")
    speedup = kernel_warm["ticks_per_sec"] / cold["ticks_per_sec"]
    kernel_vs_object = kernel_warm["ticks_per_sec"] / object_warm["ticks_per_sec"]
    steady_table = Table(
        ["engine", "ticks/sec (solve)", "allocated", "builds"],
        title=(
            f"SERVICE: steady-state scheduling rate "
            f"(omega-{STEADY_PORTS}, {STEADY_TICKS} ticks, kernel "
            f"{speedup:.2f}x cold, {kernel_vs_object:.2f}x object warm)"
        ),
    )
    steady_table.add_row(
        "warm kernel",
        f"{kernel_warm['ticks_per_sec']:.0f}",
        kernel_warm["allocated"],
        kernel_warm["engine_builds"],
    )
    steady_table.add_row(
        "warm object",
        f"{object_warm['ticks_per_sec']:.0f}",
        object_warm["allocated"],
        object_warm["engine_builds"],
    )
    steady_table.add_row("cold", f"{cold['ticks_per_sec']:.0f}", cold["allocated"], "-")
    with capsys.disabled():
        print("\n" + steady_table.render())

    # Record the perf baseline for later PRs.
    baseline = {
        "benchmark": "bench_service_throughput",
        "network": "omega-8",
        "horizon": HORIZON,
        "seed": SEED,
        "loads": {
            f"rate={rate:g}": {
                mode: {
                    "allocations_per_sec": results[(rate, mode)]["allocations_per_sec"],
                    "mean_wait": results[(rate, mode)]["mean_wait"],
                    "allocated": results[(rate, mode)]["allocated"],
                    "instructions_per_allocation": results[(rate, mode)][
                        "instructions_per_allocation"
                    ],
                }
                for mode in ("batched", "serial")
            }
            for rate in LOADS
        },
        "steady_state": {
            "network": f"omega-{STEADY_PORTS}",
            "ticks": STEADY_TICKS,
            "hold_ticks": STEADY_HOLD,
            "warm": kernel_warm,
            "warm_object": object_warm,
            "cold": cold,
            "speedup": speedup,
            "kernel_vs_object": kernel_vs_object,
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")

    # The warm-engine claims: same allocations as cold on the same
    # traffic, one build each, kernel ≥1.5× the cold steady-state rate
    # and strictly above the object-graph warm engine.
    assert kernel_warm["allocated"] == cold["allocated"]
    assert object_warm["allocated"] == cold["allocated"]
    assert kernel_warm["engine_builds"] == 1
    assert object_warm["engine_builds"] == 1
    assert speedup >= STEADY_SPEEDUP
    assert kernel_vs_object > 1.0

    heavy_batched = results[(1.5, "batched")]
    heavy_serial = results[(1.5, "serial")]
    # At heavy load the batched service strictly beats one-per-solve:
    # more allocations inside the horizon and more per wall-clock
    # second — while serial starves its queue (mass timeouts).  No
    # instructions-per-allocation assert here: serving almost nobody
    # makes serial's trivial solves nearly free per allocation (see the
    # module docstring), so the economy claim lives at moderate load.
    assert heavy_batched["allocated"] > heavy_serial["allocated"]
    assert heavy_batched["allocations_per_sec"] > heavy_serial["allocations_per_sec"]
    assert heavy_serial["timed_out"] > heavy_batched["timed_out"]
    # At moderate load batching never hurts allocation count and spends
    # fewer solver instructions per allocation (the amortisation).
    assert results[(0.5, "batched")]["allocated"] >= results[(0.5, "serial")]["allocated"]
    assert (
        results[(0.5, "batched")]["instructions_per_allocation"]
        < results[(0.5, "serial")]["instructions_per_allocation"]
    )

    def kernel():
        return run_service(_spec(), rate=0.8, horizon=30.0, seed=3).allocated

    benchmark(kernel)

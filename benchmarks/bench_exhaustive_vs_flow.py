"""EXHAUSTIVE — the complexity cliff motivating Section III.

Paper claim: *"Exhaustive methods that examine all possible ordered
mappings have exponential complexity ... The scheduler has to try a
maximum of C(x,y) y! mappings ... Suboptimal heuristics can be used
but it is only practical when x and y are small.  In this section, we
transform the optimal request-resource mapping problem into various
network flow problems for which many efficient algorithms exist."*

Regenerates: candidate-mapping counts and wall-clock of exhaustive
search vs the flow scheduler as x = y grows on a free 8x8 Omega —
identical optima, factorial vs polynomial cost.

Timed kernels: exhaustive and flow scheduling at x = y = 5.
"""

import time

import pytest

from repro.core import (
    MRSIN,
    OptimalScheduler,
    Request,
    count_candidate_mappings,
    exhaustive_schedule,
)
from repro.networks import omega
from repro.util.tables import Table


def instance(x: int) -> MRSIN:
    """x requesters and x free resources on omega(8)."""
    m = MRSIN(omega(8))
    for r in range(x, 8):
        m.resources[r].busy = True
    for p in range(x):
        m.submit(Request(p))
    return m


@pytest.mark.benchmark(group="exhaustive")
def test_exhaustive_vs_flow_report(benchmark, capsys):
    table = Table(
        ["x=y", "candidate mappings C(x,y)y!", "exhaustive [ms]", "flow [ms]", "both optimal"],
        title="EXHAUSTIVE: brute force vs flow transformation (omega-8)",
    )
    exhaustive_times = []
    flow_times = []
    for x in (2, 3, 4, 5, 6):
        m1, m2 = instance(x), instance(x)
        t0 = time.perf_counter()
        ex = exhaustive_schedule(m1)
        t1 = time.perf_counter()
        opt = OptimalScheduler().schedule(m2)
        t2 = time.perf_counter()
        assert len(ex) == len(opt) == x, "both must fully allocate"
        exhaustive_times.append(t1 - t0)
        flow_times.append(t2 - t1)
        table.add_row(x, count_candidate_mappings(x, x),
                      f"{(t1 - t0) * 1e3:.2f}", f"{(t2 - t1) * 1e3:.2f}", "yes")
    with capsys.disabled():
        print("\n" + table.render())

    # The cliff: exhaustive cost explodes relative to flow cost.
    ratio_small = exhaustive_times[0] / max(flow_times[0], 1e-9)
    ratio_large = exhaustive_times[-1] / max(flow_times[-1], 1e-9)
    assert ratio_large > 5 * ratio_small, (
        f"exhaustive/flow ratio must blow up: {ratio_small:.1f} -> {ratio_large:.1f}"
    )

    def kernel():
        return len(OptimalScheduler().schedule(instance(5)))

    assert benchmark(kernel) == 5


@pytest.mark.benchmark(group="exhaustive")
def test_exhaustive_kernel_time(benchmark):
    """Wall-clock of the brute-force search at x = y = 5."""
    def kernel():
        return len(exhaustive_schedule(instance(5)))

    assert benchmark(kernel) == 5

"""FIG8 — layered-network construction with a flow-cancelling arc.

Paper setup (Fig. 8): a 4x4 MRSIN where processors p1, p2, p4 request
and resources r1, r3, r4 are free; the initial mapping
``{(p1, r4), (p4, r1)}`` blocks p2.  The layered network built from
that flow contains a *backward* arc (6→5 reversing the flow on 5→6),
exposing the augmenting path that reallocates and serves all three.

Regenerates: the layered structure, the backward arc, and the final
allocation count.  Timed kernel: ``build_layered_network``.
"""

import pytest

from repro.flows.dinic import build_layered_network, dinic
from repro.flows.graph import FlowNetwork
from repro.util.tables import Table


def fig8_network_with_flow() -> FlowNetwork:
    """Fig. 8(a)-equivalent: value-2 flow that blocks the p2 request."""
    net = FlowNetwork()
    net.add_arc("s", "p1", 1)
    net.add_arc("s", "p2", 1)
    net.add_arc("s", "p4", 1)
    net.add_arc("p1", "n4", 1)
    net.add_arc("p2", "n4", 1)
    net.add_arc("p4", "n5", 1)
    net.add_arc("n4", "n6", 1)
    net.add_arc("n4", "n7", 1)
    net.add_arc("n5", "n6", 1)
    net.add_arc("n5", "n7", 1)
    net.add_arc("n6", "r1", 1)
    net.add_arc("n6", "r4", 1)
    net.add_arc("n7", "r3", 1)
    net.add_arc("r1", "t", 1)
    net.add_arc("r3", "t", 1)
    net.add_arc("r4", "t", 1)
    for tail, head in (
        ("s", "p1"), ("p1", "n4"), ("n4", "n6"), ("n6", "r4"), ("r4", "t"),
        ("s", "p4"), ("p4", "n5"), ("n5", "n7"), ("n7", "r3"), ("r3", "t"),
    ):
        net.find_arcs(tail, head)[0].flow = 1.0
    return net


@pytest.mark.benchmark(group="fig8")
def test_fig8_layered_network(benchmark, capsys):
    net = fig8_network_with_flow()
    layered = build_layered_network(net, "s", "t")

    assert layered.reaches_sink
    backward = [
        (node, arc.tail, arc.head)
        for node, moves in layered.moves.items()
        for arc, fwd in moves
        if not fwd
    ]
    assert backward, "the Fig. 8(b) layered network must contain a backward arc"

    # Completing Dinic serves the blocked request: all 3 resources.
    result = dinic(net, "s", "t")
    assert result.value == 3

    table = Table(["quantity", "paper", "measured"], title="FIG8: layered network")
    table.add_row("initial allocations", 2, 2)
    table.add_row("layered-network depth", "6 layers", layered.depth)
    table.add_row("backward (cancelling) arcs", ">= 1 (arc 6->5)",
                  [f"{u}->{v} reversed at {n}" for n, v, u in backward])
    table.add_row("allocations after augmentation", 3, int(result.value))
    with capsys.disabled():
        print("\n" + table.render())

    def kernel():
        fresh = fig8_network_with_flow()
        return build_layered_network(fresh, "s", "t").depth

    assert benchmark(kernel) == layered.depth

"""SIM-SCALE — blocking vs network size (extension experiment).

The paper evaluates at 8x8; a natural question it leaves open is how
the optimal-vs-heuristic gap scales.  Each doubling of an Omega adds a
stage, so an address-mapped circuit must win one more link lottery per
hop, while the optimal scheduler keeps solving the global matching.

Regenerates: blocking vs N in {8, 16, 32} for both policies at 0.8
density.  Expected shape: the heuristic deteriorates with N; the
optimal scheduler stays near zero.

Timed kernel: one optimal cycle at N = 32.
"""

import pytest

from repro.core import OptimalScheduler
from repro.networks import omega
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.tables import Table

SIZES = (8, 16, 32)
TRIALS = 60


@pytest.mark.benchmark(group="sim-scale")
def test_blocking_vs_network_size(benchmark, capsys):
    table = Table(
        ["N", "stages", "optimal P(block)", "heuristic P(block)", "gap"],
        title="SIM-SCALE: blocking vs Omega size (d=0.8)",
    )
    heuristic_curve = []
    optimal_curve = []
    for n in SIZES:
        spec = WorkloadSpec(builder=omega, n_ports=n,
                            request_density=0.8, free_density=0.8)
        opt = estimate_blocking(spec, "optimal", trials=TRIALS, seed=31)
        heur = estimate_blocking(spec, "random_binding", trials=TRIALS, seed=31)
        optimal_curve.append(opt.probability)
        heuristic_curve.append(heur.probability)
        gap = heur.probability / max(opt.probability, 1e-3)
        table.add_row(n, n.bit_length() - 1, f"{opt.probability:.3f}",
                      f"{heur.probability:.3f}", f"{gap:.0f}x")
    with capsys.disabled():
        print("\n" + table.render())

    # Shape: heuristic gets worse with size; optimal stays tiny.
    assert heuristic_curve[-1] > heuristic_curve[0], heuristic_curve
    assert all(p < 0.05 for p in optimal_curve), optimal_curve

    spec = WorkloadSpec(builder=omega, n_ports=32,
                        request_density=0.8, free_density=0.8)

    def kernel():
        m = sample_instance(spec, 5)
        return len(OptimalScheduler().schedule(m))

    benchmark(kernel)

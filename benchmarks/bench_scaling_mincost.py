"""COMPLEX (min-cost) — out-of-kilter on 0-1 networks.

Paper claim (Section III-C): *"For a flow network of 0-1 capacity,
the time complexity [of the out-of-kilter method] is bounded by
O(|V| |E|^2)"*, and the assignment it returns is integral, so
*"the optimal request-resource mapping of homogeneous MRSIN with
request priorities and resource preferences can be obtained
efficiently."*

Regenerates: kilter-step counts vs the ``|V||E|^2`` envelope on
Transformation 2 networks of growing size, and the head-to-head of the
three min-cost solvers (identical optima, different costs of running).

Timed kernels: one priority scheduling cycle per solver.
"""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.transform import transformation2
from repro.flows.out_of_kilter import out_of_kilter
from repro.networks import omega
from repro.util.counters import OpCounter
from repro.util.tables import Table

SIZES = (8, 16, 32)


def priority_instance(n: int) -> MRSIN:
    m = MRSIN(omega(n), preferences=[(i * 7) % 10 + 1 for i in range(n)])
    for p in range(n):
        m.submit(Request(p, priority=(p * 3) % 10 + 1))
    return m


@pytest.mark.benchmark(group="scaling-mincost")
def test_out_of_kilter_scaling_report(benchmark, capsys):
    table = Table(["N", "|V|", "|E|", "kilter steps", "bound |V||E|^2", "steps/bound"],
                  title="COMPLEX: out-of-kilter on Transformation 2 (0-1) networks")
    ratios = []
    for n in SIZES:
        m = priority_instance(n)
        problem = transformation2(m)
        counter = OpCounter()
        res = out_of_kilter(problem.net, "s", "t",
                            target_flow=problem.required_flow, counter=counter)
        assert res.value == problem.required_flow
        nv, ne = problem.net.n_nodes, problem.net.n_arcs
        steps = counter["kilter_step"]
        bound = nv * ne * ne
        ratios.append(steps / bound)
        table.add_row(n, nv, ne, steps, bound, f"{steps / bound:.2e}")
    with capsys.disabled():
        print("\n" + table.render())
    for r in ratios:
        assert r < 1.0
    assert ratios[-1] <= ratios[0], "steps must grow no faster than the bound"

    def kernel():
        m = priority_instance(16)
        problem = transformation2(m)
        return out_of_kilter(problem.net, "s", "t",
                             target_flow=problem.required_flow).value

    benchmark(kernel)


@pytest.mark.benchmark(group="scaling-mincost")
@pytest.mark.parametrize("algo", ["out_of_kilter", "ssp", "cycle_cancel", "network_simplex"])
def test_mincost_solver_comparison(benchmark, capsys, algo):
    """All three solvers reach the same optimum; their run times differ
    (SSP with potentials is the practical choice, out-of-kilter is the
    paper's)."""
    reference = None
    sched = OptimalScheduler(mincost=algo)
    mapping = sched.schedule(priority_instance(16))
    cost = sched.stats.flow_cost
    if reference is not None:
        assert cost == pytest.approx(reference)
    with capsys.disabled():
        print(f"\n{algo}: allocations={len(mapping)}, flow cost={cost:g}")

    def kernel():
        return len(OptimalScheduler(mincost=algo).schedule(priority_instance(16)))

    assert benchmark(kernel) == 16

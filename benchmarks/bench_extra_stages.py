"""SIM-EXTRA — extra stages make even arbitrary mappings work.

Paper claim: *"If extra stages are provided, there will be more paths
available.  Resources may be fully allocated in most cases even when
an arbitrary resource-request mapping is used.  Finding an optimal
mapping becomes less critical."*

Regenerates: blocking of the *arbitrary* (fixed i-th→i-th) mapping on
Omega networks with 0..3 extra stages (path multiplicity 1, 2, 4, 8),
against the optimal scheduler's blocking on the same instances.
Expected shape: arbitrary-mapping blocking collapses toward optimal
as stages are added.

Timed kernel: one arbitrary-mapping cycle on the +2-stage network.
"""

import pytest

from repro.core import arbitrary_schedule
from repro.networks import extra_stage_omega
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.tables import Table

TRIALS = 120


@pytest.mark.benchmark(group="sim-extra")
def test_extra_stage_blocking(benchmark, capsys):
    table = Table(
        ["extra stages", "paths per pair", "arbitrary P(block)", "optimal P(block)"],
        title="SIM-EXTRA: arbitrary mapping vs extra stages (omega-8, full load)",
    )
    arbitrary_curve = []
    for extra in (0, 1, 2, 3):
        spec = WorkloadSpec(
            builder=lambda n, e=extra: extra_stage_omega(n, e), n_ports=8,
            request_density=0.7, free_density=0.7,
        )
        arb = estimate_blocking(spec, "arbitrary", trials=TRIALS, seed=5)
        opt = estimate_blocking(spec, "optimal", trials=TRIALS, seed=5)
        arbitrary_curve.append(arb.probability)
        table.add_row(extra, 2 ** extra, f"{arb.probability:.3f}", f"{opt.probability:.3f}")
    with capsys.disabled():
        print("\n" + table.render())

    # Shape: strictly easier with every extra stage, and near-optimal
    # by +3 stages.
    assert arbitrary_curve == sorted(arbitrary_curve, reverse=True), arbitrary_curve
    assert arbitrary_curve[0] > 0.08, "bare Omega must block arbitrary mappings often"
    assert arbitrary_curve[-1] < 0.02, "with 3 extra stages arbitrary is nearly free"
    assert arbitrary_curve[-1] < arbitrary_curve[0] / 5, "extra stages must collapse blocking"

    spec = WorkloadSpec(builder=lambda n: extra_stage_omega(n, 2), n_ports=8)

    def kernel():
        m = sample_instance(spec, 4)
        return len(arbitrary_schedule(m))

    benchmark(kernel)

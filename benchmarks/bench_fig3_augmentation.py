"""FIG3/FIG4 — flow augmentation with cancellation and reallocation.

Paper claim (Figs. 3 and 4): given the initial flow on ``s-a-d-t``
(mapping ``{(pa, rd), (pc, rb)}`` blocked at one unit), the augmenting
path ``s-c-d-a-b-t`` — which *cancels* the flow on ``a→d`` — yields
flow 2 and the reallocation ``{(pa, rb), (pc, rd)}``: *"advancing flow
through an augmenting path is equivalent to a resource reallocation"*.

Regenerates: both flow assignments and the reallocated mapping.
Timed kernel: the augmenting-path search + augmentation.
"""

import pytest

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.util.tables import Table


def fig3_network() -> FlowNetwork:
    """Fig. 3(a): unit-capacity network with initial flow on s-a-d-t."""
    net = FlowNetwork()
    net.add_arc("s", "a", 1)
    net.add_arc("s", "c", 1)
    net.add_arc("a", "b", 1)
    net.add_arc("a", "d", 1)
    net.add_arc("c", "d", 1)
    net.add_arc("b", "t", 1)
    net.add_arc("d", "t", 1)
    for tail, head in (("s", "a"), ("a", "d"), ("d", "t")):
        net.find_arcs(tail, head)[0].flow = 1.0
    return net


@pytest.mark.benchmark(group="fig3")
def test_fig3_flow_augmentation(benchmark, capsys):
    net = fig3_network()
    assert net.flow_value("s") == 1.0  # the initial Fig. 3(a) flow

    result = edmonds_karp(net, "s", "t")

    # Fig. 3(c): final flow 2 along s-a-b-t and s-c-d-t; the middle
    # arc a->d was cancelled.
    assert result.value == 2
    assert net.find_arcs("a", "d")[0].flow == 0.0
    for tail, head in (("s", "a"), ("a", "b"), ("b", "t"),
                       ("s", "c"), ("c", "d"), ("d", "t")):
        assert net.find_arcs(tail, head)[0].flow == 1.0

    # Fig. 4: the corresponding reallocation.
    paths = net.decompose_paths("s", "t")
    mapping = {p[0].head: p[-1].tail for p in paths}
    assert mapping == {"a": "b", "c": "d"}  # {(pa, rb), (pc, rd)}

    table = Table(["quantity", "paper", "measured"], title="FIG3/4: flow augmentation")
    table.add_row("initial flow", 1, 1)
    table.add_row("flow after augmenting s-c-d-a-b-t", 2, int(result.value))
    table.add_row("flow on a->d after cancellation", 0, int(net.find_arcs("a", "d")[0].flow))
    table.add_row("reallocation", "{(pa,rb),(pc,rd)}",
                  "{" + ", ".join(f"(p{k},r{v})" for k, v in sorted(mapping.items())) + "}")
    with capsys.disabled():
        print("\n" + table.render())

    def augment():
        fresh = fig3_network()
        return edmonds_karp(fresh, "s", "t").value

    assert benchmark(augment) == 2

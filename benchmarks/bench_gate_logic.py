"""DIST-GATES — the NS hardware cost claim, in concrete numbers.

Paper claim (Section IV-B): the per-switchbox process *"can be
realized easily by a finite-state machine ... The design has a very
low gate count and a very short token propagation delay"*, which is
what lets scheduling speed be *"limited only by the switching delay of
logic gates"*.

Regenerates: two-input gate count (with common-subexpression sharing)
and critical-path depth of the request-phase decision logic for NS
sizes 2x2 .. 8x8, plus per-output evaluation cost.

Timed kernel: evaluating the full 2x2 equation set once (the work one
NS does per clock period, in our software model of the hardware).
"""

import pytest

from repro.distributed.logic import depth, ns_request_logic, shared_gate_count
from repro.util.tables import Table


@pytest.mark.benchmark(group="dist-gates")
def test_ns_gate_cost_report(benchmark, capsys):
    table = Table(
        ["NS size", "outputs", "2-input gates (shared)", "critical path [gate delays]"],
        title="DIST-GATES: NS request-phase combinational logic",
    )
    counts = []
    for size in (2, 3, 4, 8):
        logic = ns_request_logic(size, size)
        gates = shared_gate_count(logic.values())
        crit = max(depth(e) for e in logic.values())
        counts.append(gates)
        table.add_row(f"{size}x{size}", len(logic), gates, crit)
    with capsys.disabled():
        print("\n" + table.render())

    # "Very low gate count": a 2x2 NS decision logic is well under a
    # hundred gates, and growth with port count is linear-ish.
    assert counts[0] < 100
    assert counts[-1] < counts[0] * 8

    logic = ns_request_logic(2, 2)
    env = {
        name: False
        for name in (
            ["e3", "fired"]
            + [f"tok_in_{i}" for i in range(2)]
            + [f"tok_out_{o}" for o in range(2)]
            + [f"mark_in_{i}" for i in range(2)]
            + [f"mark_out_{o}" for o in range(2)]
            + [f"reg_in_{i}" for i in range(2)]
            + [f"reg_out_{o}" for o in range(2)]
            + [f"occ_out_{o}" for o in range(2)]
        )
    }
    env["e3"] = True
    env["tok_in_0"] = True

    def kernel():
        return sum(expr.evaluate(env) for expr in logic.values())

    assert benchmark(kernel) > 0

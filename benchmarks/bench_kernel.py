"""KERNEL — flat-array CSR Dinic vs the object-graph solver, by size.

The kernel's contract is compile-once / solve-many: the warm service
engine lowers the Transformation-1 network a single time and then
re-solves it every tick.  This benchmark measures exactly that regime —
``FlowNetwork.compile()`` runs once per size, and the timed quantity is
one full max-flow solve (seed from the current assignment, kernel
Dinic, flow readback) against the object Dinic on the *same* network.

Claim recorded in ``BENCH_kernel.json``: the kernel wins at **every**
size, and the margin grows with the network — the object solver's inner
loop is attribute loads on ``Arc`` objects, the kernel's is integer
list indexing, so the gap widens as the arc count (and with it the
interpreter overhead per phase) grows.  Sizes run to omega-1024
(|V| ≈ 7.7k, |E| ≈ 16.4k for the transformed network).

Run directly with ``--smoke`` for the CI gate: a single omega-64
comparison that fails if the kernel does not beat the object solver.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import MRSIN, Request
from repro.core.transform import transformation1
from repro.flows.dinic import dinic
from repro.networks import omega
from repro.util.tables import Table

SIZES = (16, 64, 256, 1024)
ROUNDS = 5
SMOKE_SIZE = 64
SMOKE_ROUNDS = 3
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def full_load_problem(n: int):
    m = MRSIN(omega(n))
    for p in range(n):
        m.submit(Request(p))
    return transformation1(m)


def compare(n: int, rounds: int) -> dict:
    """Best-of-``rounds`` solve time for both implementations.

    The same network object is zeroed and re-solved alternately, so
    both sides see identical structure and identical allocator state.
    """
    problem = full_load_problem(n)
    net = problem.net
    compiled = net.compile()  # once — the engine's amortised regime
    best_obj = best_ker = float("inf")
    for _ in range(rounds):
        net.zero_flow()
        t0 = time.perf_counter()
        value = dinic(net, problem.source, problem.sink).value
        best_obj = min(best_obj, time.perf_counter() - t0)
        if value != n:
            raise AssertionError(f"object solver found {value} != {n} on omega-{n}")
        net.zero_flow()
        t0 = time.perf_counter()
        value = compiled.solve(problem.source, problem.sink).value
        best_ker = min(best_ker, time.perf_counter() - t0)
        if value != n:
            raise AssertionError(f"kernel found {value} != {n} on omega-{n}")
    return {
        "n_nodes": net.n_nodes,
        "n_arcs": net.n_arcs,
        "object_ms": best_obj * 1e3,
        "kernel_ms": best_ker * 1e3,
        "speedup": best_obj / best_ker,
    }


def run_smoke() -> int:
    r = compare(SMOKE_SIZE, SMOKE_ROUNDS)
    print(
        f"kernel smoke (omega-{SMOKE_SIZE}): object {r['object_ms']:.2f}ms, "
        f"kernel {r['kernel_ms']:.2f}ms, speedup {r['speedup']:.2f}x"
    )
    if r["speedup"] <= 1.0:
        print("FAIL: kernel did not beat the object solver", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return run_smoke()
    print("usage: bench_kernel.py --smoke  (or run under pytest)", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct --smoke invocation
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="kernel")
    def test_kernel_beats_object_at_every_size(benchmark, capsys):
        results = {n: compare(n, ROUNDS) for n in SIZES}

        table = Table(
            ["N", "|V|", "|E|", "object ms", "kernel ms", "speedup"],
            title="KERNEL: compiled CSR solve vs object Dinic (omega, full load)",
        )
        for n, r in results.items():
            table.add_row(
                n, r["n_nodes"], r["n_arcs"],
                f"{r['object_ms']:.2f}", f"{r['kernel_ms']:.2f}",
                f"{r['speedup']:.2f}x",
            )
        with capsys.disabled():
            print("\n" + table.render())

        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "bench_kernel",
                    "method": f"best of {ROUNDS} solves, compile amortised",
                    "sizes": {str(n): results[n] for n in SIZES},
                },
                indent=2,
            )
            + "\n"
        )

        # The tentpole claim: the kernel wins at every size, and the
        # margin does not shrink as the network grows.
        for n, r in results.items():
            assert r["speedup"] > 1.0, f"kernel lost at omega-{n}: {r}"
        assert results[SIZES[-1]]["speedup"] >= results[SIZES[0]]["speedup"]

        def timed():
            return compare(SMOKE_SIZE, 1)["speedup"]

        benchmark(timed)

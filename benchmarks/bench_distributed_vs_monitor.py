"""DIST — distributed token architecture vs the monitor architecture.

Paper claim (Section IV): *"the token-propagation architecture has two
factors that contribute to a significant speedup as compared to a
monitor architecture: 1) the augmenting paths are searched in
parallel, and 2) the time complexity is measured in gate delays
instead of instruction cycles.  As a result, the scheduling algorithm
will run at a much higher speed than a software implementation."*

Regenerates: clocks (distributed) vs instructions (monitor) per
scheduling cycle across network sizes, plus the speedup under the
paper-era assumption that an instruction cycle costs ~100 gate delays.
Both architectures must find identical optima.

Timed kernels: one distributed cycle and one monitor cycle at N=16.
"""

import pytest

from benchmarks.conftest import random_loaded_mrsin
from repro.distributed import DistributedScheduler, MonitorScheduler
from repro.util.tables import Table

SIZES = (8, 16, 32)
GATE_DELAYS_PER_INSTRUCTION = 100  # a conservative 1980s CPI model


@pytest.mark.benchmark(group="dist")
def test_distributed_vs_monitor_report(benchmark, capsys):
    table = Table(
        ["N", "allocations", "distributed clocks", "monitor instructions",
         "speedup (@100 gd/instr)"],
        title="DIST: distributed token architecture vs monitor",
    )
    speedups = []
    for n in SIZES:
        clocks = instructions = allocs = 0
        for seed in range(5):
            m = random_loaded_mrsin(seed, n=n)
            dist = DistributedScheduler().schedule(m)
            mon = MonitorScheduler().schedule(m)
            assert len(dist.mapping) == len(mon.mapping), "architectures must agree"
            clocks += dist.clocks
            instructions += mon.instructions
            allocs += len(dist.mapping)
        speedup = instructions * GATE_DELAYS_PER_INSTRUCTION / clocks
        speedups.append(speedup)
        table.add_row(n, allocs, clocks, int(instructions), f"{speedup:.0f}x")
    with capsys.disabled():
        print("\n" + table.render())

    # "Significant speedup" — and growing with network size, since the
    # monitor serialises what the tokens do in parallel.
    assert all(s > 100 for s in speedups), speedups
    assert speedups[-1] > speedups[0], "speedup must grow with network size"

    def kernel():
        m = random_loaded_mrsin(0, n=16)
        return DistributedScheduler().schedule(m).clocks

    benchmark(kernel)


@pytest.mark.benchmark(group="dist")
def test_monitor_cycle_time(benchmark):
    """Wall-clock of the software (monitor) cycle for comparison."""
    def kernel():
        m = random_loaded_mrsin(0, n=16)
        return MonitorScheduler().schedule(m).instructions

    assert benchmark(kernel) > 0

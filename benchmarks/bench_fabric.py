"""FABRIC — aggregate allocation throughput vs fabric width.

One allocation service is capped by one core's tick rate.  The fabric
shards the installation into cells (one OS process each) behind a
cross-shard broker with a max-flow spill tier; this benchmark measures
how aggregate throughput scales as the same per-cell workload is run
at widths 1 → 8 cells of omega-32.

**How throughput is measured (read before quoting numbers).**  Two
figures are recorded per width:

- ``wall_allocs_per_sec`` — allocations over elapsed wall time.  On a
  host with fewer cores than cells (this repo's CI has **one**), the
  cells timeshare a core and wall time measures the host, not the
  fabric.
- ``aggregate_allocs_per_sec`` — allocations over *critical-path* CPU
  seconds: per round, the slowest cell's process-CPU time plus the
  broker's serial CPU time.  CPU time excludes time a process spends
  descheduled, so this is the round's span on a one-core-per-cell
  deployment — the deployment the fabric is for.  The scaling claim
  is asserted on this figure, with ``host_cpus`` recorded alongside
  so the provenance is explicit.

Claim recorded in ``BENCH_fabric.json``: aggregate throughput rises
monotonically with width and reaches >= 4x the single-cell figure at
8 cells — the broker's serial share (routing, custody, spill solves)
stays a small fraction of the per-round critical path.

Run directly with ``--smoke`` for the CI gate: a seeded 2-cell run
that must be deterministic across two executions, place every request
(zero leaks is enforced inside the driver with real exceptions), and
exercise the spill tier.
"""

from __future__ import annotations

import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.fabric.driver import FabricConfig, run_fabric, sweep_cells
from repro.util.tables import Table

CELL_COUNTS = (1, 2, 4, 8)
SWEEP_REPEATS = 3
SWEEP_CONFIG = FabricConfig(
    topology="omega", ports=32, rounds=10, ticks_per_round=16, seed=7
)
SMOKE_CONFIG = FabricConfig(
    topology="omega", ports=16, cells=2, rounds=6, ticks_per_round=12, seed=7
)
MIN_SPEEDUP_AT_MAX = 4.0
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"


def run_sweep() -> dict:
    """The full scaling sweep, plus host provenance for the record."""
    result = sweep_cells(SWEEP_CONFIG, CELL_COUNTS, repeats=SWEEP_REPEATS)
    probe = run_fabric(replace(SWEEP_CONFIG, cells=1, rounds=2))
    result["host_cpus"] = probe.host_cpus
    result["method"] = (
        f"best of {SWEEP_REPEATS} runs per width (totals are "
        "seed-deterministic; repeats differ only in timing noise); "
        "aggregate = allocations / critical-path CPU seconds "
        "(per round: max per-cell process CPU + broker serial CPU); "
        "models one core per cell — see bench_fabric.py docstring"
    )
    return result


def check_sweep(result: dict) -> None:
    """The scaling claims, as real exceptions (shared by CI and pytest)."""
    rows = result["rows"]
    speedups = [row["speedup_vs_1"] for row in rows]
    if speedups != sorted(speedups):
        raise AssertionError(f"aggregate throughput not monotonic: {speedups}")
    if speedups[-1] < MIN_SPEEDUP_AT_MAX:
        raise AssertionError(
            f"{rows[-1]['cells']} cells reached only {speedups[-1]:.2f}x "
            f"(need >= {MIN_SPEEDUP_AT_MAX}x)"
        )
    for row in rows:
        placed = row["allocated"] + row["spill_failed"]
        if placed != row["offered"]:
            raise AssertionError(f"conservation broke at {row['cells']} cells: {row}")


def render_sweep(result: dict) -> str:
    table = Table(
        ["cells", "offered", "allocated", "spilled", "agg allocs/s",
         "wall allocs/s", "speedup"],
        title=(
            f"FABRIC: omega-{SWEEP_CONFIG.ports} per cell, "
            f"host_cpus={result['host_cpus']}"
        ),
    )
    for row in result["rows"]:
        table.add_row(
            row["cells"], row["offered"], row["allocated"],
            row["spill_allocated"],
            f"{row['aggregate_allocs_per_sec']:.0f}",
            f"{row['wall_allocs_per_sec']:.0f}",
            f"{row['speedup_vs_1']:.2f}x",
        )
    return table.render()


def run_smoke() -> int:
    """CI gate: deterministic, conservative, spill-exercising 2-cell run."""
    first = run_fabric(SMOKE_CONFIG)
    second = run_fabric(SMOKE_CONFIG)
    print(
        f"fabric smoke (omega-{SMOKE_CONFIG.ports} x {SMOKE_CONFIG.cells}): "
        f"offered {first.totals['offered']}, "
        f"allocated {first.totals['allocated']}, "
        f"escalated {first.totals['escalated']}, "
        f"spill placed {first.totals['spill_allocated']}"
    )
    if first.totals != second.totals:
        print(
            f"FAIL: totals not deterministic:\n  {first.totals}\n  {second.totals}",
            file=sys.stderr,
        )
        return 1
    if first.per_round_granted != second.per_round_granted:
        print("FAIL: per-round grants not deterministic", file=sys.stderr)
        return 1
    if first.totals["escalated"] == 0 or first.totals["spill_allocated"] == 0:
        print("FAIL: smoke run never exercised the spill tier", file=sys.stderr)
        return 1
    # Zero lease leaks and exact request conservation are enforced
    # inside run_fabric with real exceptions; reaching here means both
    # held twice.
    print("fabric smoke: deterministic, conserved, spill exercised")
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return run_smoke()
    result = run_sweep()
    print(render_sweep(result))
    check_sweep(result)
    BASELINE_PATH.write_text(
        json.dumps({"benchmark": "bench_fabric", **result}, indent=2, sort_keys=True)
        + "\n"
    )
    print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct --smoke invocation
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="fabric")
    def test_fabric_scales_near_linearly(benchmark, capsys):
        result = run_sweep()
        with capsys.disabled():
            print("\n" + render_sweep(result))
        check_sweep(result)
        BASELINE_PATH.write_text(
            json.dumps(
                {"benchmark": "bench_fabric", **result}, indent=2, sort_keys=True
            )
            + "\n"
        )

        def timed():
            return run_fabric(SMOKE_CONFIG).totals["allocated"]

        benchmark(timed)

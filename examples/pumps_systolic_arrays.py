#!/usr/bin/env python3
"""PUMPS-style heterogeneous resource pool (the paper's Fig. 1(a)).

The PUMPS architecture shares a pool of VLSI systolic arrays — each
implementing one image-processing function — among general-purpose
processors over an RSIN.  This example models a 16-port Omega MRSIN
whose output ports carry three types of units (FFT arrays, convolution
arrays, histogram units), with processors issuing typed, prioritised
requests.

Scheduling is the heterogeneous discipline of Table II: a
multicommodity minimum-cost flow solved by the from-scratch Simplex
solver (the LP optimum is integral on this restricted topology, per
Evans–Jarvis).

Run:  python examples/pumps_systolic_arrays.py
"""

from collections import Counter

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.transform import heterogeneous_min_cost_problem
from repro.networks import omega
from repro.util.tables import Table


def main() -> None:
    # A pool of 16 units: FFT and convolution arrays are plentiful,
    # histogram units scarce.  Newer units get higher preference.
    types = ["fft", "conv", "fft", "hist",
             "conv", "fft", "conv", "hist",
             "fft", "conv", "fft", "conv",
             "fft", "conv", "fft", "conv"]
    prefs = [8, 5, 8, 9, 5, 3, 5, 9, 8, 5, 3, 5, 8, 3, 3, 5]
    system = MRSIN(omega(16), resource_types=types, preferences=prefs)
    pool = Counter(types)
    print(f"systolic-array pool: {dict(pool)}")

    # Image-analysis tasks: mostly FFT + convolution, a couple of
    # histogram requests; urgency varies by pipeline stage.
    workload = [
        Request(0, "fft", priority=9),
        Request(1, "conv", priority=7),
        Request(2, "fft", priority=4),
        Request(3, "hist", priority=8),
        Request(5, "conv", priority=5),
        Request(6, "hist", priority=6),
        Request(8, "fft", priority=2),
        Request(9, "conv", priority=3),
        Request(11, "hist", priority=2),   # 3 hist requests, 2 hist units
        Request(13, "fft", priority=5),
    ]
    system.submit_many(workload)
    demand = Counter(r.resource_type for r in workload)
    print(f"request mix: {dict(demand)}")

    # The multicommodity LP behind the scenes.
    problem, _ = heterogeneous_min_cost_problem(system)
    print(f"\ncommodities (one per requested type): "
          f"{[(c.name, f'demand {c.demand}') for c in problem.commodities]}")

    scheduler = OptimalScheduler()
    mapping = scheduler.schedule(system)
    print(f"scheduled {len(mapping)} of {len(workload)} requests "
          f"(discipline: {scheduler.stats.discipline.value})")

    table = Table(["processor", "type", "priority", "resource", "preference"],
                  title="\nallocations")
    for a in sorted(mapping, key=lambda a: a.request.processor):
        table.add_row(a.request.processor, a.request.resource_type,
                      a.request.priority, a.resource.index, a.resource.preference)
    print(table.render())

    served = Counter(a.request.resource_type for a in mapping)
    print(f"\nserved by type: {dict(served)}")
    # Only two histogram units exist, so exactly one hist request waits;
    # the two served ones are the more urgent.
    assert served["hist"] == 2
    hist_served = sorted(a.request.priority for a in mapping
                         if a.request.resource_type == "hist")
    print(f"hist priorities served: {hist_served} (priority 2 request queued)")
    assert hist_served == [6, 8]

    # Everything is realisable simultaneously — establish it.
    system.apply_mapping(mapping)
    print(f"pool utilization after allocation: {system.utilization():.0%}")


if __name__ == "__main__":
    main()

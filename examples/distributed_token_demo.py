#!/usr/bin/env python3
"""Token propagation traced step by step (Section IV / Fig. 8).

Runs the distributed token-propagation scheduler with full tracing on
a small 4x4 MRSIN engineered so the second scheduling iteration must
*cancel* tentative flow — the paper's Fig. 8 situation, where the
layered network contains a backward arc and a blocked request is
rescued by reallocating an earlier tentative binding.

Shows: the Fig. 10 state sequence, the status-bus vectors, every token
movement, and the final mapping (identical to software Dinic).

Run:  python examples/distributed_token_demo.py
"""

from repro.core import MRSIN, OptimalScheduler, Request
from repro.distributed import DistributedScheduler
from repro.networks import omega


def find_cancellation_instance():
    """Search small harsh states until one exercises cancellation."""
    import numpy as np

    probe = DistributedScheduler(record=True)
    for seed in range(500):
        rng = np.random.default_rng(seed)
        net = omega(8)
        system = MRSIN(net)
        for link in net.links:
            if rng.random() < 0.25:
                link.occupied = True
        for r in range(8):
            if rng.random() < 0.3:
                system.resources[r].busy = True
        for p in range(8):
            if rng.random() < 0.8 and not net.processor_link(p).occupied:
                system.submit(Request(p))
        outcome = probe.schedule(system)
        if any("cancels" in t.detail for t in outcome.token_trace):
            return system, seed
    raise RuntimeError("no cancellation instance found")


def main() -> None:
    system, seed = find_cancellation_instance()
    print(f"instance (seed {seed}): "
          f"{len(system.schedulable_requests())} requests, "
          f"{len(system.free_resources())} free resources, "
          f"{sum(l.occupied for l in system.network.links)} occupied links\n")

    scheduler = DistributedScheduler(record=True)
    outcome = scheduler.schedule(system)

    print("=== Fig. 10 state sequence (with status-bus vectors) ===")
    for state, bus in zip(outcome.state_trace, outcome.bus_trace):
        print(f"  [{bus}] {state.value}")

    print(f"\n=== token activity ({outcome.iterations} iterations, "
          f"{outcome.clocks} clock periods) ===")
    current = None
    for t in outcome.token_trace:
        if (t.iteration, t.phase) != current:
            current = (t.iteration, t.phase)
            print(f"-- iteration {t.iteration}, {t.phase}-token phase --")
        print(f"  clock {t.clock:3d}: {t.detail}")

    print(f"\nfinal mapping: {sorted(outcome.mapping.pairs)}")

    # The hardware found exactly the software optimum.
    software = OptimalScheduler().schedule(system)
    print(f"software Dinic optimum: {len(software)} allocations -> "
          f"hardware found {len(outcome.mapping)}")
    assert len(software) == len(outcome.mapping)

    cancels = [t for t in outcome.token_trace if "cancels" in t.detail]
    print(f"\nflow cancellations performed by tokens: {len(cancels)}")
    for t in cancels:
        print(f"  iteration {t.iteration}: {t.detail}")


if __name__ == "__main__":
    main()

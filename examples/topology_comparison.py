#!/usr/bin/env python3
"""Topology shoot-out: the same scheduler on every network in the package.

The paper's conclusion: the flow method is *"independent of the
interconnection structure"*, but *"the resource utilization ... will
depend on the network configuration"*.  This example measures blocking
for the optimal scheduler and the address-mapped heuristic across all
eleven topologies, and prints each network's structural redundancy.

Run:  python examples/topology_comparison.py
"""

from repro.networks import (
    baseline,
    benes,
    clos,
    crossbar,
    cube,
    delta,
    extra_stage_omega,
    flip,
    gamma,
    omega,
)
from repro.sim.blocking import estimate_blocking
from repro.sim.workload import WorkloadSpec
from repro.util.tables import Table

TOPOLOGIES = [
    ("omega-8", omega),
    ("flip-8", flip),
    ("cube-8", cube),
    ("delta-8", delta),
    ("baseline-8", baseline),
    ("benes-8", benes),
    ("gamma-8", gamma),
    ("omega-8 +2 stages", lambda n: extra_stage_omega(n, 2)),
    ("clos(4,2,4)", lambda n: clos(4, 2, 4)),
    ("crossbar-8", lambda n: crossbar(n, n)),
]


def main() -> None:
    table = Table(
        ["topology", "stages", "links", "paths 0->5",
         "optimal P(block)", "heuristic P(block)"],
        title="blocking at request/free density 0.9 (80 instances per cell)",
    )
    for name, builder in TOPOLOGIES:
        net = builder(8)
        spec = WorkloadSpec(builder=builder, n_ports=8,
                            request_density=0.9, free_density=0.9)
        opt = estimate_blocking(spec, "optimal", trials=80, seed=42)
        heur = estimate_blocking(spec, "random_binding", trials=80, seed=42)
        table.add_row(
            name, net.n_stages, len(net.links), net.count_paths(0, 5),
            f"{opt.probability:.3f}", f"{heur.probability:.3f}",
        )
    print(table.render())
    print("\nreading: optimal scheduling flattens the landscape — every "
          "topology serves nearly everything; without it, path "
          "redundancy is what you pay for (unique-path networks block "
          "an address-mapped workload ~25-30% of the time).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Priority/preference scheduling — the paper's Fig. 5 scenario.

An 8x8 Omega MRSIN where requests carry priority levels and resources
carry preference values (both on a 1..10 scale, as in Fig. 5).  The
scheduler runs Transformation 2 and solves a minimum-cost flow with
the out-of-kilter algorithm — the paper's named method.

The demo shows the two guarantees of Theorem 3 (plus the documented
priority correction):
  * the number of allocations is never sacrificed (bypassing costs
    more than any real path), and
  * under contention, urgent requests win and preferred resources are
    chosen.

Run:  python examples/priority_scheduling.py
"""

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.transform import transformation2
from repro.networks import omega


def main() -> None:
    # Resources r0..r7 with preference values; two circuits already up
    # (cf. Fig. 5(a): some paths in the network are occupied).
    network = omega(8)
    preferences = [9, 1, 6, 1, 8, 1, 4, 7]
    system = MRSIN(network, preferences=preferences,
                   max_priority=10, max_preference=10)
    for p, r in [(1, 1), (6, 3)]:
        network.establish_circuit(network.find_free_path(p, r))
        system.resources[r].busy = True

    # Three processors request, with different urgencies (Fig. 5 uses
    # p3, p5, p8 — 0-based 2, 4, 7).
    requests = [Request(2, priority=6), Request(4, priority=9), Request(7, priority=2)]
    system.submit_many(requests)
    print("requests:", [(r.processor, f"priority {r.priority}") for r in requests])
    print("free resources:", [(r.index, f"preference {r.preference}")
                              for r in system.free_resources()])

    # Peek at the transformed flow network (Transformation 2).
    problem = transformation2(system)
    print(f"\nTransformation 2 flow network: |V| = {problem.net.n_nodes}, "
          f"|E| = {problem.net.n_arcs}, required flow F0 = {problem.required_flow}")
    print(f"bypass node: {problem.bypass!r} (absorbs unallocatable requests)")

    # Solve with the paper's out-of-kilter algorithm.
    scheduler = OptimalScheduler(mincost="out_of_kilter")
    mapping = scheduler.schedule(system)
    print(f"\noptimal mapping ({len(mapping)} allocations, "
          f"flow cost {scheduler.stats.flow_cost:g}):")
    for a in sorted(mapping, key=lambda a: a.request.processor):
        print(f"  processor {a.request.processor} (priority {a.request.priority})"
              f" -> resource {a.resource.index} (preference {a.resource.preference})")

    # All three requests are served — cost never reduces allocations —
    # and the high-preference resources are picked first.
    assert len(mapping) == 3
    chosen_prefs = sorted((a.resource.preference for a in mapping), reverse=True)
    print(f"\nchosen preferences: {chosen_prefs} "
          f"(out of {sorted(preferences, reverse=True)})")

    # Now a contention scenario: free only ONE resource and let two
    # requests with different priorities fight for it.
    system2 = MRSIN(omega(8))
    for r in range(1, 8):
        system2.resources[r].busy = True
    system2.submit(Request(2, priority=2))
    system2.submit(Request(5, priority=9))
    mapping2 = OptimalScheduler().schedule(system2)
    (assignment,) = mapping2.assignments
    print(f"\ncontention for the last resource: priority 9 vs priority 2 -> "
          f"processor {assignment.request.processor} wins "
          f"(priority {assignment.request.priority})")
    assert assignment.request.priority == 9


if __name__ == "__main__":
    main()

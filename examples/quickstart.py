#!/usr/bin/env python3
"""Quickstart: optimal resource scheduling on an 8x8 Omega MRSIN.

Builds the paper's running example — a multistage resource sharing
interconnection network embedded in an 8x8 Omega network — submits
requests, computes the optimal request→resource mapping via the
max-flow reduction (Transformation 1 + Dinic), and establishes the
circuits.

Run:  python examples/quickstart.py
"""

from repro.core import MRSIN, OptimalScheduler, Request, random_binding_schedule
from repro.networks import omega


def main() -> None:
    # 1. Build the network and wrap it in the MRSIN system model.
    network = omega(8)
    system = MRSIN(network)
    print(f"network: {network.name} with {network.n_stages} stages, "
          f"{len(network.links)} links")

    # 2. Some allocations already exist: processor 2 is using resource
    #    1, processor 4 is using resource 6 (as in the paper's Fig. 2,
    #    two circuits are up before scheduling begins).
    for p, r in [(2, 1), (4, 6)]:
        network.establish_circuit(network.find_free_path(p, r))
        system.resources[r].busy = True
    print(f"pre-existing circuits: {[(c.processor, c.resource) for c in network.circuits]}")

    # 3. Five processors request a resource — no destination address,
    #    just "give me any free resource".
    for p in (0, 3, 5, 6, 7):
        system.submit(Request(p))
    print(f"requests from processors: {sorted(system.requesting_processors())}")
    print(f"free resources: {[r.index for r in system.free_resources()]}")

    # 4. A conventional address-mapped scheduler binds each request to
    #    a random free resource and hopes the route is clear...
    heuristic = random_binding_schedule(system, rng=0)
    print(f"\naddress-mapped heuristic allocated {len(heuristic)} of 5: "
          f"{sorted(heuristic.pairs)}")

    # 5. ... while the optimal scheduler solves a max-flow problem over
    #    the network state and finds a conflict-free mapping for all 5.
    scheduler = OptimalScheduler()          # maxflow="dinic" by default
    mapping = scheduler.schedule(system)
    print(f"optimal scheduler allocated {len(mapping)} of 5: "
          f"{sorted(mapping.pairs)}")
    assert len(mapping) == 5

    # 6. Realise the mapping: establish circuits, mark resources busy.
    system.apply_mapping(mapping)
    print(f"\nafter allocation: utilization = {system.utilization():.0%}, "
          f"link occupancy = {network.occupancy():.0%}")

    # 7. Tasks are transmitted; circuits release while resources keep
    #    computing (the paper's model item 5).
    for assignment in mapping:
        system.complete_transmission(assignment.resource.index)
    print(f"after transmissions: link occupancy = {network.occupancy():.0%}, "
          f"utilization still {system.utilization():.0%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Dennis-style data flow computer as a resource sharing system (Fig. 1(b)).

In Dennis' architecture, *cell blocks* emit enabled instructions that
must be routed to any free *processing unit*; the processing units are
the shared resource pool and an RSIN connects the two sides.  This
example drives the queueing simulator with that workload shape and
compares optimal scheduling against blind address mapping over a range
of instruction-firing rates — showing the throughput/response-time
payoff of the RSIN's distributed scheduling intelligence.

Run:  python examples/dataflow_machine.py
"""

from repro.core import MRSIN
from repro.networks import omega
from repro.sim.queueing import simulate_queueing
from repro.util.tables import Table


def main() -> None:
    n = 8
    print(f"data flow machine: {n} cell blocks -> omega({n}) RSIN -> "
          f"{n} processing units")
    print("(instructions fire at each cell block with rate λ; a processing "
          "unit executes one instruction in ~1.0 time units)\n")

    table = Table(
        ["firing rate λ", "policy", "PU utilization", "mean response", "completed"],
        title="steady state over 400 time units (20 warmup)",
    )
    for rate in (0.3, 0.6, 0.9):
        for policy in ("optimal", "random_binding"):
            system = MRSIN(omega(n))
            res = simulate_queueing(
                system,
                policy=policy,
                arrival_rate=rate,
                mean_service=1.0,
                transmission_time=0.05,
                horizon=400.0,
                warmup=20.0,
                seed=7,
            )
            table.add_row(rate, policy, f"{res.utilization:.2f}",
                          f"{res.mean_response:.2f}", res.completed)
    print(table.render())

    # At high firing rates the optimal scheduler sustains visibly more
    # completed instructions: blocked instructions waste PU idle time.
    opt = simulate_queueing(MRSIN(omega(n)), policy="optimal",
                            arrival_rate=0.9, horizon=400.0, seed=7)
    blind = simulate_queueing(MRSIN(omega(n)), policy="random_binding",
                              arrival_rate=0.9, horizon=400.0, seed=7)
    gain = opt.completed / max(blind.completed, 1)
    print(f"\nthroughput at λ=0.9: optimal completes {opt.completed}, "
          f"address mapping {blind.completed} ({gain:.2f}x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault tolerance: scheduling around dead links and dead resources.

The paper lists *"fault tolerance and modularity"* among the reasons
for a distributed implementation.  This example progressively kills
links in an 8x8 Omega and a gamma network and shows (a) how much of
the request load each scheduler still serves, and (b) that the
distributed token architecture keeps finding the exact optimum with no
reconfiguration — the failed links simply never carry tokens.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.core import MRSIN, OptimalScheduler, Request, random_binding_schedule
from repro.distributed import DistributedScheduler
from repro.networks import gamma, omega
from repro.util.tables import Table


def run(builder, name: str, kill_fractions, seed: int = 0) -> None:
    table = Table(
        ["dead links", "ideal", "optimal", "distributed", "address-mapped"],
        title=f"\n{name}: allocations under progressive link failures",
    )
    rng = np.random.default_rng(seed)
    for frac in kill_fractions:
        net = builder(8)
        m = MRSIN(net)
        killed = 0
        for link in net.links:
            # Never kill terminal links in this demo so the ideal
            # stays 8 and the network damage is what varies.
            internal = link.src.kind == "box_out" and link.dst.kind == "box_in"
            if internal and rng.random() < frac:
                link.occupied = True
                killed += 1
        for p in range(8):
            m.submit(Request(p))
        optimal = OptimalScheduler().schedule(m)
        distributed = DistributedScheduler().schedule(m).mapping
        heuristic = random_binding_schedule(m, rng=seed)
        assert len(optimal) == len(distributed), "architectures must agree"
        table.add_row(f"{killed}", 8, len(optimal), len(distributed), len(heuristic))
    print(table.render())


def main() -> None:
    print("killing internal links at increasing rates; 8 requests, all "
          "resources free; ideal = 8 allocations")
    run(omega, "omega-8 (unique paths: damage bites immediately)",
        (0.0, 0.1, 0.25, 0.4))
    run(gamma, "gamma-8 (redundant paths: damage mostly absorbed)",
        (0.0, 0.1, 0.25, 0.4))

    # The distributed architecture needs no failure notification: a
    # dead link is just a link that never carries a token.
    net = omega(8)
    m = MRSIN(net)
    for link in net.links[9:14]:
        link.occupied = True
    for p in range(8):
        if not net.processor_link(p).occupied:
            m.submit(Request(p))
    outcome = DistributedScheduler().schedule(m)
    print(f"\nafter killing links 9..13 the token architecture still "
          f"allocates {len(outcome.mapping)} requests in "
          f"{outcome.iterations} iterations / {outcome.clocks} clocks")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Load balancing: processors as resources (Section I).

*"In a resource sharing system with load balancing, processors are
considered as resources ... load balancing schemes are used to
redistribute requests among resources."*  Here 8 worker processors sit
on both sides of an Omega RSIN: overloaded workers push surplus tasks
into the network, which routes each to any underloaded worker —
maximally, via the max-flow scheduler.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro.core import MRSIN, OptimalScheduler, Request
from repro.networks import omega


def main() -> None:
    rng = np.random.default_rng(11)
    n = 8
    # Initial queue lengths: a skewed load (some workers swamped).
    queues = [int(x) for x in rng.poisson(2.0, n)]
    queues[2] += 6
    queues[5] += 4
    print(f"initial queue lengths: {queues}  (mean {np.mean(queues):.1f})")

    mean = float(np.mean(queues))
    rounds = 0
    migrations = 0
    while max(queues) - min(queues) > 1 and rounds < 20:
        rounds += 1
        system = MRSIN(omega(n))
        # Overloaded workers request a migration target; underloaded
        # workers advertise themselves as free "resources".
        senders = [p for p in range(n) if queues[p] > mean + 0.5]
        receivers = [r for r in range(n) if queues[r] < mean - 0.5]
        if not senders or not receivers:
            break
        for r in range(n):
            if r not in receivers:
                system.resources[r].busy = True
        for p in senders:
            system.submit(Request(p))
        mapping = OptimalScheduler().schedule(system)
        if not mapping.assignments:
            break
        for a in mapping:
            queues[a.request.processor] -= 1
            queues[a.resource.index] += 1
            migrations += 1
        print(f"round {rounds}: {len(mapping)} migrations "
              f"{sorted(mapping.pairs)} -> queues {queues}")

    spread = max(queues) - min(queues)
    print(f"\nbalanced after {rounds} rounds, {migrations} migrations: "
          f"queues {queues} (spread {spread})")
    assert spread <= 2


if __name__ == "__main__":
    main()
